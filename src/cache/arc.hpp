#ifndef LFO_CACHE_ARC_HPP
#define LFO_CACHE_ARC_HPP

#include <list>
#include <unordered_map>

#include "cache/policy.hpp"

namespace lfo::cache {

/// ARC — Adaptive Replacement Cache [Megiddo & Modha, FAST 2003], adapted
/// to variable object sizes (budgets and the adaptation target p are in
/// bytes rather than pages, as in webcachesim's variant).
///
/// Two resident LRU lists: T1 (seen once recently) and T2 (seen at least
/// twice); two ghost lists B1/B2 remember recently evicted ids. A ghost
/// hit in B1 means T1 was too small (grow p); a ghost hit in B2 means T2
/// was too small (shrink p). ARC thereby self-tunes between recency and
/// frequency — a classical "hand-tuned parameters removed" baseline that
/// predates the learning approaches the paper surveys.
class ArcCache : public CachePolicy {
 public:
  explicit ArcCache(std::uint64_t capacity);

  std::string name() const override { return "ARC"; }
  bool contains(trace::ObjectId object) const override;
  void clear() override;

  /// Current adaptation target for T1, in bytes (diagnostics).
  std::uint64_t target_t1() const { return p_; }

 protected:
  void on_hit(const trace::Request& request) override;
  void on_miss(const trace::Request& request) override;

 private:
  enum class ListId { kT1, kT2, kB1, kB2 };
  struct Entry {
    trace::ObjectId object;
    std::uint64_t size;
    ListId list;
  };
  using List = std::list<Entry>;

  List& list_of(ListId id);
  std::uint64_t& bytes_of(ListId id);
  void remove(std::unordered_map<trace::ObjectId, List::iterator>::iterator
                  map_it);
  void push_mru(ListId id, trace::ObjectId object, std::uint64_t size);
  /// Demote the LRU of T1 or T2 (per the ARC rule) into its ghost list
  /// until `needed` bytes fit among the resident lists.
  void replace(std::uint64_t needed, bool b2_hit);
  void trim_ghosts();

  List t1_, t2_, b1_, b2_;
  std::uint64_t t1_bytes_ = 0, t2_bytes_ = 0, b1_bytes_ = 0, b2_bytes_ = 0;
  std::uint64_t p_ = 0;  // target size of T1 in bytes
  std::unordered_map<trace::ObjectId, List::iterator> map_;
};

}  // namespace lfo::cache

#endif  // LFO_CACHE_ARC_HPP
