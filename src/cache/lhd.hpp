#ifndef LFO_CACHE_LHD_HPP
#define LFO_CACHE_LHD_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/policy.hpp"
#include "util/rng.hpp"

namespace lfo::cache {

/// LHD — Least Hit Density [Beckmann, Chen & Cidon, NSDI 2018].
///
/// Every cached object is ranked by its *hit density*: the probability of
/// a future hit divided by the expected cache space-time it will consume,
/// normalized per byte. Densities are estimated online from per-class
/// age-binned hit/eviction counters; classes combine an object-size bucket
/// with how many hits the object has received (LHD's "app + hit count"
/// classing, adapted to the anonymized-trace setting). Eviction samples
/// `sample_size` random objects and evicts the lowest-density one, as in
/// the paper's implementation.
class LhdCache : public CachePolicy {
 public:
  LhdCache(std::uint64_t capacity, std::uint32_t sample_size = 64,
           std::uint64_t seed = 1);

  std::string name() const override { return "LHD"; }
  bool contains(trace::ObjectId object) const override;
  void clear() override;

 protected:
  void on_hit(const trace::Request& request) override;
  void on_miss(const trace::Request& request) override;

 private:
  static constexpr std::uint32_t kAgeBins = 128;
  static constexpr std::uint32_t kSizeClasses = 8;
  static constexpr std::uint32_t kHitClasses = 3;  // 0, 1, 2+ hits
  static constexpr std::uint64_t kReconfigureInterval = 1 << 15;
  static constexpr double kEwmaDecay = 0.9;

  struct Entry {
    trace::ObjectId object;
    std::uint64_t size;
    std::uint64_t last_access;
    std::uint32_t hits;
  };
  struct ClassStats {
    std::vector<double> hits;       // per age bin
    std::vector<double> evictions;  // per age bin
    std::vector<double> density;    // per age bin (recomputed)
  };

  std::uint32_t size_class(std::uint64_t size) const;
  std::uint32_t class_of(const Entry& e) const;
  std::uint32_t age_bin(const Entry& e) const;
  double rank(const Entry& e) const;
  void record_hit(const Entry& e);
  void record_eviction(const Entry& e);
  void maybe_reconfigure();
  void recompute_densities();
  void evict_one();

  std::uint32_t sample_size_;
  util::Rng rng_;
  std::uint32_t age_shift_ = 4;  // age coarsening; adapted online
  std::uint64_t next_reconfigure_;
  std::vector<ClassStats> classes_;
  std::vector<Entry> slots_;
  std::unordered_map<trace::ObjectId, std::size_t> index_;
  double overflow_events_ = 0.0;  // ages landing in the last bin
  double total_events_ = 0.0;
};

}  // namespace lfo::cache

#endif  // LFO_CACHE_LHD_HPP
