#include "cache/greedy_dual.hpp"

namespace lfo::cache {

GreedyDualCache::GreedyDualCache(std::uint64_t capacity,
                                 GreedyDualVariant variant)
    : CachePolicy(capacity), variant_(variant) {}

bool GreedyDualCache::contains(trace::ObjectId object) const {
  return entries_.contains(object);
}

void GreedyDualCache::clear() {
  entries_.clear();
  order_.clear();
  inflation_ = 0.0;
  sub_used(used_bytes());
}

double GreedyDualCache::priority_for(const trace::Request& request,
                                     std::uint64_t frequency) const {
  const double value_per_byte =
      request.cost / static_cast<double>(request.size);
  const double freq_term = variant_ == GreedyDualVariant::kGdsf
                               ? static_cast<double>(frequency)
                               : 1.0;
  return inflation_ + freq_term * value_per_byte;
}

void GreedyDualCache::on_hit(const trace::Request& request) {
  auto& e = entries_[request.object];
  ++e.frequency;
  order_.erase(e.order_it);
  e.priority = priority_for(request, e.frequency);
  e.order_it = order_.emplace(e.priority, request.object);
}

void GreedyDualCache::on_miss(const trace::Request& request) {
  if (request.size > capacity()) return;
  while (free_bytes() < request.size) evict_one();
  auto& e = entries_[request.object];
  e.size = request.size;
  e.frequency = 1;
  e.priority = priority_for(request, 1);
  e.order_it = order_.emplace(e.priority, request.object);
  add_used(request.size);
}

void GreedyDualCache::evict_one() {
  const auto victim = order_.begin();
  const auto object = victim->second;
  inflation_ = victim->first;  // age the cache to the evicted priority
  sub_used(entries_[object].size);
  entries_.erase(object);
  order_.erase(victim);
}

}  // namespace lfo::cache
