#include "cache/lhd.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace lfo::cache {

LhdCache::LhdCache(std::uint64_t capacity, std::uint32_t sample_size,
                   std::uint64_t seed)
    : CachePolicy(capacity),
      sample_size_(std::max<std::uint32_t>(1, sample_size)),
      rng_(seed),
      next_reconfigure_(kReconfigureInterval) {
  classes_.resize(kSizeClasses * kHitClasses);
  for (auto& c : classes_) {
    c.hits.assign(kAgeBins, 0.0);
    c.evictions.assign(kAgeBins, 0.0);
    // Optimistic initial densities: younger = denser, so the cache starts
    // out behaving like LRU until real statistics accumulate.
    c.density.assign(kAgeBins, 0.0);
    for (std::uint32_t a = 0; a < kAgeBins; ++a) {
      c.density[a] = 1.0 / static_cast<double>(a + 1);
    }
  }
}

bool LhdCache::contains(trace::ObjectId object) const {
  return index_.contains(object);
}

void LhdCache::clear() {
  slots_.clear();
  index_.clear();
  sub_used(used_bytes());
}

std::uint32_t LhdCache::size_class(std::uint64_t size) const {
  // log4 buckets starting at 4 KiB: [0,4K), [4K,16K), ...
  std::uint32_t c = 0;
  std::uint64_t bound = 4096;
  while (c + 1 < kSizeClasses && size >= bound) {
    bound *= 4;
    ++c;
  }
  return c;
}

std::uint32_t LhdCache::class_of(const Entry& e) const {
  const std::uint32_t h = std::min<std::uint32_t>(e.hits, kHitClasses - 1);
  return size_class(e.size) * kHitClasses + h;
}

std::uint32_t LhdCache::age_bin(const Entry& e) const {
  const std::uint64_t age = (clock() - e.last_access) >> age_shift_;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(age, kAgeBins - 1));
}

double LhdCache::rank(const Entry& e) const {
  const auto& c = classes_[class_of(e)];
  return c.density[age_bin(e)] / static_cast<double>(e.size);
}

void LhdCache::record_hit(const Entry& e) {
  const auto bin = age_bin(e);
  classes_[class_of(e)].hits[bin] += 1.0;
  total_events_ += 1.0;
  if (bin == kAgeBins - 1) overflow_events_ += 1.0;
}

void LhdCache::record_eviction(const Entry& e) {
  const auto bin = age_bin(e);
  classes_[class_of(e)].evictions[bin] += 1.0;
  total_events_ += 1.0;
  if (bin == kAgeBins - 1) overflow_events_ += 1.0;
}

void LhdCache::maybe_reconfigure() {
  if (clock() < next_reconfigure_) return;
  next_reconfigure_ = clock() + kReconfigureInterval;
  // Grow the age coarsening when too many events overflow the last bin.
  if (total_events_ > 0 && overflow_events_ / total_events_ > 0.1) {
    ++age_shift_;
  }
  overflow_events_ = 0.0;
  total_events_ = 0.0;
  recompute_densities();
  // EWMA-decay the counters so the estimator tracks drifting workloads.
  for (auto& c : classes_) {
    for (auto& v : c.hits) v *= kEwmaDecay;
    for (auto& v : c.evictions) v *= kEwmaDecay;
  }
}

void LhdCache::recompute_densities() {
  // Backward recurrences (NSDI'18 §3.2): for age a,
  //   expectedHits(a)     = sum_{t>=a} hit[t]
  //   expectedLifetime(a) = sum_{u>=a} sum_{t>=u} (hit[t]+evict[t])
  // density(a) = expectedHits(a) / expectedLifetime(a).
  for (auto& c : classes_) {
    double hits_above = 0.0;
    double events_above = 0.0;
    double lifetime_above = 0.0;
    for (std::uint32_t a = kAgeBins; a-- > 0;) {
      hits_above += c.hits[a];
      events_above += c.hits[a] + c.evictions[a];
      lifetime_above += events_above;
      c.density[a] = lifetime_above > 0.0 ? hits_above / lifetime_above
                                          : 1.0 / static_cast<double>(a + 1);
    }
  }
}

void LhdCache::on_hit(const trace::Request& request) {
  auto& e = slots_[index_[request.object]];
  record_hit(e);
  e.last_access = clock();
  ++e.hits;
  maybe_reconfigure();
}

void LhdCache::on_miss(const trace::Request& request) {
  maybe_reconfigure();
  if (request.size > capacity()) return;
  while (free_bytes() < request.size) evict_one();
  index_.emplace(request.object, slots_.size());
  slots_.push_back({request.object, request.size, clock(), 0});
  add_used(request.size);
}

void LhdCache::evict_one() {
  std::size_t victim = rng_.uniform(slots_.size());
  double victim_rank = rank(slots_[victim]);
  for (std::uint32_t s = 1; s < sample_size_; ++s) {
    const std::size_t cand = rng_.uniform(slots_.size());
    const double r = rank(slots_[cand]);
    if (r < victim_rank) {
      victim = cand;
      victim_rank = r;
    }
  }
  record_eviction(slots_[victim]);
  sub_used(slots_[victim].size);
  index_.erase(slots_[victim].object);
  if (victim + 1 != slots_.size()) {
    slots_[victim] = slots_.back();
    index_[slots_[victim].object] = victim;
  }
  slots_.pop_back();
}

}  // namespace lfo::cache
