#ifndef LFO_CACHE_GREEDY_DUAL_HPP
#define LFO_CACHE_GREEDY_DUAL_HPP

#include <map>
#include <unordered_map>

#include "cache/policy.hpp"

namespace lfo::cache {

/// The Greedy-Dual family [Cherkasova 1998]. Each cached object carries
/// a priority H; the global inflation value L rises to the priority of
/// every evicted object, implementing O(1) aging:
///   GDS:  H = L + cost / size
///   GDSF: H = L + frequency * cost / size
///
/// GDSF is the heuristic that beats RL-based caching in the paper's
/// Fig 1; both are Fig 6-family baselines.
enum class GreedyDualVariant { kGds, kGdsf };

class GreedyDualCache : public CachePolicy {
 public:
  GreedyDualCache(std::uint64_t capacity, GreedyDualVariant variant);

  std::string name() const override {
    return variant_ == GreedyDualVariant::kGds ? "GDS" : "GDSF";
  }
  bool contains(trace::ObjectId object) const override;
  void clear() override;

  double inflation() const { return inflation_; }

 protected:
  void on_hit(const trace::Request& request) override;
  void on_miss(const trace::Request& request) override;

 private:
  struct Entry {
    std::uint64_t size;
    std::uint64_t frequency;
    double priority;
    std::multimap<double, trace::ObjectId>::iterator order_it;
  };

  double priority_for(const trace::Request& request,
                      std::uint64_t frequency) const;
  void evict_one();

  GreedyDualVariant variant_;
  double inflation_ = 0.0;  // the "L" value
  std::unordered_map<trace::ObjectId, Entry> entries_;
  std::multimap<double, trace::ObjectId> order_;
};

}  // namespace lfo::cache

#endif  // LFO_CACHE_GREEDY_DUAL_HPP
