#include "cache/rl_cache.hpp"

#include <algorithm>
#include <cmath>

namespace lfo::cache {

RlCache::RlCache(std::uint64_t capacity, RlParams params, std::uint64_t seed)
    : LruCache(capacity), params_(params), rng_(seed) {}

std::uint32_t RlCache::state_of(const trace::Request& request) const {
  // Size bucket: log4 starting at 1 KiB.
  std::uint32_t sb = 0;
  std::uint64_t bound = 1024;
  while (sb + 1 < kSizeBuckets && request.size >= bound) {
    bound *= 4;
    ++sb;
  }
  // Recency bucket: log4 of requests since this object was last seen.
  std::uint32_t rb = kRecencyBuckets - 1;  // "never seen"
  const auto it = last_seen_.find(request.object);
  if (it != last_seen_.end()) {
    const std::uint64_t gap = clock() - it->second;
    rb = 0;
    std::uint64_t rbound = 16;
    while (rb + 1 < kRecencyBuckets - 1 && gap >= rbound) {
      rbound *= 4;
      ++rb;
    }
  }
  return sb * kRecencyBuckets + rb;
}

double& RlCache::q(std::uint32_t state, std::uint8_t action) {
  return q_table_[state * 2 + action];
}

void RlCache::reward_pending(trace::ObjectId object, bool hit,
                             std::uint32_t next_state) {
  const auto it = pending_.find(object);
  if (it == pending_.end()) return;
  const Pending p = it->second;
  pending_.erase(it);
  double reward;
  if (p.action == 1) {
    reward = hit ? 1.0 : -params_.occupancy_penalty;
  } else {
    reward = params_.bypass_penalty;
  }
  const double best_next =
      std::max(q(next_state, 0), q(next_state, 1));
  double& qv = q(p.state, p.action);
  qv += params_.learning_rate *
        (reward + params_.discount * best_next - qv);
}

void RlCache::on_hit(const trace::Request& request) {
  const auto state = state_of(request);
  reward_pending(request.object, /*hit=*/true, state);
  last_seen_[request.object] = clock();
  LruCache::on_hit(request);
}

void RlCache::on_miss(const trace::Request& request) {
  const auto state = state_of(request);
  // The pending admission (if any) did not produce a hit before this
  // re-request/eviction cycle.
  reward_pending(request.object, /*hit=*/false, state);
  last_seen_[request.object] = clock();

  std::uint8_t action;
  if (rng_.bernoulli(params_.epsilon)) {
    action = static_cast<std::uint8_t>(rng_.uniform(2));
  } else {
    action = q(state, 1) >= q(state, 0) ? 1 : 0;
  }
  pending_[request.object] = {state, action};
  if (action == 1) LruCache::on_miss(request);
}

double RlCache::q_spread() const {
  double spread = 0.0;
  for (std::uint32_t s = 0; s < kStates; ++s) {
    spread += std::abs(q_table_[s * 2 + 1] - q_table_[s * 2]);
  }
  return spread / kStates;
}

}  // namespace lfo::cache
