#ifndef LFO_CACHE_TINYLFU_HPP
#define LFO_CACHE_TINYLFU_HPP

#include <cstdint>
#include <vector>

#include "cache/lru.hpp"

namespace lfo::cache {

/// 4-bit count-min sketch with periodic halving (the "aging" reset of
/// TinyLFU). Approximates request frequencies in O(1) space per counter.
class FrequencySketch {
 public:
  /// `counters` is rounded up to a power of two.
  explicit FrequencySketch(std::size_t counters);

  void increment(std::uint64_t key);
  std::uint32_t estimate(std::uint64_t key) const;
  /// Halve all counters (called automatically every `sample_size`
  /// increments).
  void age();
  std::uint64_t increments() const { return increments_; }

 private:
  static constexpr std::uint32_t kRows = 4;
  static constexpr std::uint32_t kMaxCount = 15;  // 4-bit counters

  std::uint32_t get(std::uint32_t row, std::size_t idx) const;
  void set(std::uint32_t row, std::size_t idx, std::uint32_t value);
  std::size_t index(std::uint64_t key, std::uint32_t row) const;

  std::size_t mask_;
  std::uint64_t sample_size_;
  std::uint64_t increments_ = 0;
  // Packed 4-bit counters: kRows tables of (mask_+1) counters.
  std::vector<std::uint8_t> table_;
};

/// TinyLFU admission over an LRU cache [Einziger & Friedman 2014]: on a
/// miss, the candidate is admitted only if its sketched frequency exceeds
/// the would-be LRU victim's. Included as an extension baseline (the paper
/// cites TinyLFU among the admission heuristics LFO subsumes).
class TinyLfuCache : public LruCache {
 public:
  TinyLfuCache(std::uint64_t capacity, std::size_t sketch_counters = 1 << 18);

  std::string name() const override { return "TinyLFU"; }

 protected:
  void on_hit(const trace::Request& request) override;
  void on_miss(const trace::Request& request) override;

 private:
  FrequencySketch sketch_;
};

}  // namespace lfo::cache

#endif  // LFO_CACHE_TINYLFU_HPP
