#include "cache/adaptsize.hpp"

#include <algorithm>
#include <cmath>

namespace lfo::cache {

AdaptSizeCache::AdaptSizeCache(std::uint64_t capacity,
                               std::uint64_t tuning_interval,
                               std::uint64_t seed)
    : LruCache(capacity),
      tuning_interval_(tuning_interval),
      next_tuning_(tuning_interval),
      // Initial threshold: a generous fraction of the cache so that early
      // admissions are near-unfiltered until statistics accumulate.
      c_(static_cast<double>(capacity) / 100.0),
      rng_(seed) {}

void AdaptSizeCache::observe(const trace::Request& request) {
  auto& stat = window_[request.object];
  stat.size = request.size;
  ++stat.count;
  ++window_requests_;
  maybe_tune();
}

void AdaptSizeCache::on_hit(const trace::Request& request) {
  observe(request);
  LruCache::on_hit(request);
}

void AdaptSizeCache::on_miss(const trace::Request& request) {
  observe(request);
  // Probabilistic size-aware admission.
  const double admit_probability =
      std::exp(-static_cast<double>(request.size) / c_);
  if (!rng_.bernoulli(admit_probability)) return;
  LruCache::on_miss(request);
}

void AdaptSizeCache::maybe_tune() {
  if (clock() < next_tuning_) return;
  next_tuning_ = clock() + tuning_interval_;
  if (window_.size() < 16) return;

  // Geometric grid over plausible c values: from the smallest object
  // granularity up to the full cache size.
  double best_c = c_;
  double best_ohr = -1.0;
  for (double c = 64.0; c <= static_cast<double>(capacity()) * 2.0;
       c *= 2.0) {
    const double ohr = model_ohr(c);
    if (ohr > best_ohr) {
      best_ohr = ohr;
      best_c = c;
    }
  }
  c_ = best_c;
  // Age the window so the model tracks drift (keep counts, halve them).
  for (auto it = window_.begin(); it != window_.end();) {
    it->second.count /= 2;
    it = it->second.count == 0 ? window_.erase(it) : std::next(it);
  }
  window_requests_ /= 2;
}

double AdaptSizeCache::model_ohr(double c) const {
  // Che approximation with admission: object i with request rate
  // lambda_i (per request) and admission probability a_i = e^{-s_i/c} is
  // in cache with probability
  //   p_in(i) = a_i * (1 - e^{-lambda_i * T})
  // where the characteristic time T solves sum_i s_i * p_in(i) = capacity.
  const double total = static_cast<double>(window_requests_);
  if (total <= 0) return 0.0;

  const auto occupied = [&](double t) {
    double bytes = 0.0;
    for (const auto& [id, st] : window_) {
      const double lambda = static_cast<double>(st.count) / total;
      const double admit = std::exp(-static_cast<double>(st.size) / c);
      bytes += static_cast<double>(st.size) * admit *
               (1.0 - std::exp(-lambda * t));
    }
    return bytes;
  };

  // Bisection for T in requests (characteristic time).
  double lo = 1.0;
  double hi = total * 64.0;
  if (occupied(hi) < static_cast<double>(capacity())) {
    // Everything fits: every admitted object stays resident.
    double hits = 0.0;
    for (const auto& [id, st] : window_) {
      const double lambda = static_cast<double>(st.count) / total;
      hits += lambda * std::exp(-static_cast<double>(st.size) / c);
    }
    return hits;
  }
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (occupied(mid) < static_cast<double>(capacity())) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double t = 0.5 * (lo + hi);

  double ohr = 0.0;
  for (const auto& [id, st] : window_) {
    const double lambda = static_cast<double>(st.count) / total;
    const double admit = std::exp(-static_cast<double>(st.size) / c);
    ohr += lambda * admit * (1.0 - std::exp(-lambda * t));
  }
  return ohr;
}

}  // namespace lfo::cache
