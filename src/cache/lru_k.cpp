#include "cache/lru_k.hpp"

#include <stdexcept>

namespace lfo::cache {

LruKCache::LruKCache(std::uint64_t capacity, std::uint32_t k)
    : CachePolicy(capacity), k_(k) {
  if (k == 0) throw std::invalid_argument("LruKCache: k must be >= 1");
}

std::string LruKCache::name() const {
  return "LRU-" + std::to_string(k_);
}

bool LruKCache::contains(trace::ObjectId object) const {
  return entries_.contains(object);
}

void LruKCache::clear() {
  entries_.clear();
  order_.clear();
  sub_used(used_bytes());
}

LruKCache::EvictKey LruKCache::key_for(const Entry& e) const {
  const bool full = e.history.size() >= k_;
  // kth most recent = front of the (bounded) deque; for partial histories
  // the oldest known time still orders entries among themselves.
  return {full, e.history.front()};
}

void LruKCache::touch(trace::ObjectId object, std::uint64_t size) {
  auto& e = entries_[object];
  e.size = size;
  e.history.push_back(clock());
  if (e.history.size() > k_) e.history.pop_front();
}

void LruKCache::on_hit(const trace::Request& request) {
  auto& e = entries_[request.object];
  order_.erase(e.order_it);
  touch(request.object, request.size);
  e.order_it = order_.emplace(key_for(e), request.object);
}

void LruKCache::on_miss(const trace::Request& request) {
  if (request.size > capacity()) return;
  while (free_bytes() < request.size) evict_one();
  touch(request.object, request.size);
  auto& e = entries_[request.object];
  e.order_it = order_.emplace(key_for(e), request.object);
  add_used(request.size);
}

void LruKCache::evict_one() {
  const auto victim = order_.begin();
  const auto object = victim->second;
  sub_used(entries_[object].size);
  entries_.erase(object);
  order_.erase(victim);
}

}  // namespace lfo::cache
