#ifndef LFO_CACHE_GD_WHEEL_HPP
#define LFO_CACHE_GD_WHEEL_HPP

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/policy.hpp"

namespace lfo::cache {

/// GD-Wheel [Li & Cox, EuroSys 2015]: Greedy-Dual replacement made O(1)
/// with hierarchical cost wheels (the timing-wheel trick applied to the
/// priority space). An object's priority is L + cost, with cost quantized
/// into wheel units; the global hand position implements the inflation
/// value L without re-sorting.
///
/// We use `kLevels` wheels of `kSlots` slots each. Level l covers priority
/// offsets in units of kSlots^l; when the level-0 wheel is exhausted the
/// next occupied level-1 slot is migrated (re-hashed) down, exactly as in
/// the paper.
class GdWheelCache : public CachePolicy {
 public:
  /// cost_per_unit quantizes request costs into wheel units; <= 0 selects
  /// auto-calibration from the first admitted request (cost/64).
  GdWheelCache(std::uint64_t capacity, double cost_per_unit = 0.0);

  std::string name() const override { return "GD-Wheel"; }
  bool contains(trace::ObjectId object) const override;
  void clear() override;

 protected:
  void on_hit(const trace::Request& request) override;
  void on_miss(const trace::Request& request) override;

 private:
  static constexpr std::uint32_t kLevels = 3;
  static constexpr std::uint64_t kSlots = 256;

  struct Entry {
    trace::ObjectId object;
    std::uint64_t size;
    std::uint64_t priority_units;  // absolute priority in wheel units
  };
  using Slot = std::list<Entry>;
  struct Handle {
    std::uint32_t level;
    std::uint64_t slot;
    Slot::iterator it;
  };

  std::uint64_t quantize(double cost);
  /// Slot coordinates for an absolute priority given the current hand.
  Handle place(const Entry& entry);
  void remove(trace::ObjectId object);
  void evict_one();
  /// Move entries of the next occupied higher-level slot down a level.
  bool migrate_down(std::uint32_t level);

  double cost_per_unit_;
  std::uint64_t hand_units_ = 0;  // the global "L" in wheel units
  std::array<std::vector<Slot>, kLevels> wheels_;
  std::array<std::uint64_t, kLevels> occupied_{};  // entries per level
  std::unordered_map<trace::ObjectId, Handle> index_;
};

}  // namespace lfo::cache

#endif  // LFO_CACHE_GD_WHEEL_HPP
