#include "cache/lru.hpp"

namespace lfo::cache {

LruCache::LruCache(std::uint64_t capacity) : CachePolicy(capacity) {}

bool LruCache::contains(trace::ObjectId object) const {
  return map_.contains(object);
}

void LruCache::clear() {
  list_.clear();
  map_.clear();
  sub_used(used_bytes());
}

void LruCache::on_hit(const trace::Request& request) {
  const auto it = map_.find(request.object);
  list_.splice(list_.begin(), list_, it->second);  // promote to MRU
}

void LruCache::on_miss(const trace::Request& request) {
  if (!make_room(request.size)) return;
  insert_mru(request);
}

bool LruCache::make_room(std::uint64_t needed) {
  if (needed > capacity()) return false;  // can never fit
  while (free_bytes() < needed) evict_lru();
  return true;
}

void LruCache::insert_mru(const trace::Request& request) {
  list_.push_front({request.object, request.size});
  map_.emplace(request.object, list_.begin());
  add_used(request.size);
}

void LruCache::evict_lru() {
  const auto& victim = list_.back();
  sub_used(victim.size);
  map_.erase(victim.object);
  list_.pop_back();
}

void FifoCache::on_hit(const trace::Request&) {
  // FIFO: no promotion.
}

}  // namespace lfo::cache
