#ifndef LFO_CACHE_LFUDA_HPP
#define LFO_CACHE_LFUDA_HPP

#include <map>
#include <unordered_map>

#include "cache/policy.hpp"

namespace lfo::cache {

/// LFU with dynamic aging [Arlitt et al. 2000]: an object's priority is
/// L + frequency, where the global age L is raised to the priority of each
/// evicted object. Aging prevents formerly popular objects from pinning
/// the cache forever — the failure mode of plain LFU. Fig 6 baseline.
class LfudaCache : public CachePolicy {
 public:
  /// aging = false gives plain LFU (kept as an ablation baseline).
  LfudaCache(std::uint64_t capacity, bool aging = true);

  std::string name() const override { return aging_ ? "LFUDA" : "LFU"; }
  bool contains(trace::ObjectId object) const override;
  void clear() override;

  double age() const { return age_; }

 protected:
  void on_hit(const trace::Request& request) override;
  void on_miss(const trace::Request& request) override;

 private:
  struct Entry {
    std::uint64_t size;
    std::uint64_t frequency;
    double priority;
    std::multimap<double, trace::ObjectId>::iterator order_it;
  };

  void bump(const trace::Request& request);
  void evict_one();

  bool aging_;
  double age_ = 0.0;
  std::unordered_map<trace::ObjectId, Entry> entries_;
  std::multimap<double, trace::ObjectId> order_;  // priority ascending
};

}  // namespace lfo::cache

#endif  // LFO_CACHE_LFUDA_HPP
