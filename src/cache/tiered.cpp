#include "cache/tiered.hpp"

#include <stdexcept>

namespace lfo::cache {

TieredCache::TieredCache(std::uint64_t fast_capacity,
                         std::uint64_t capacity_tier_bytes,
                         PlacementFn placement)
    : CachePolicy(fast_capacity + capacity_tier_bytes),
      placement_(std::move(placement)) {
  if (fast_capacity == 0 || capacity_tier_bytes == 0) {
    throw std::invalid_argument("TieredCache: both tiers need capacity");
  }
  tier_capacity_[0] = fast_capacity;
  tier_capacity_[1] = capacity_tier_bytes;
}

bool TieredCache::contains(trace::ObjectId object) const {
  return map_.contains(object);
}

void TieredCache::clear() {
  lists_[0].clear();
  lists_[1].clear();
  tier_used_[0] = tier_used_[1] = 0;
  map_.clear();
  sub_used(used_bytes());
}

void TieredCache::set_placement(PlacementFn placement) {
  placement_ = std::move(placement);
}

void TieredCache::on_hit(const trace::Request& request) {
  const auto it = map_.find(request.object);
  const int tier = it->second->tier;
  if (tier == 0) {
    ++fast_hits_;
    lists_[0].splice(lists_[0].begin(), lists_[0], it->second);
  } else {
    ++capacity_hits_;
    // Promote to the fast tier (if it can ever fit there).
    const auto size = it->second->size;
    if (size <= tier_capacity_[0]) {
      erase(request.object);
      insert(0, request.object, size);
    } else {
      lists_[1].splice(lists_[1].begin(), lists_[1], it->second);
    }
  }
}

void TieredCache::on_miss(const trace::Request& request) {
  const Tier tier =
      placement_ ? placement_(request) : Tier::kFast;
  if (tier == Tier::kBypass) return;
  const int t = static_cast<int>(tier);
  if (request.size > tier_capacity_[t]) return;
  insert(t, request.object, request.size);
}

void TieredCache::insert(int tier, trace::ObjectId object,
                         std::uint64_t size) {
  // Make room in this tier first; fast-tier overflow demotes downwards.
  while (tier_used_[tier] + size > tier_capacity_[tier]) {
    Entry victim = pop_lru(tier);
    if (tier == 0 && victim.size <= tier_capacity_[1]) {
      ++demotions_;
      // Demotion may cascade evictions in the capacity tier.
      while (tier_used_[1] + victim.size > tier_capacity_[1]) {
        pop_lru(1);
      }
      victim.tier = 1;
      lists_[1].push_front(victim);
      map_[victim.object] = lists_[1].begin();
      tier_used_[1] += victim.size;
      add_used(victim.size);
    }
  }
  lists_[tier].push_front({object, size, tier});
  map_[object] = lists_[tier].begin();
  tier_used_[tier] += size;
  add_used(size);
}

TieredCache::Entry TieredCache::pop_lru(int tier) {
  Entry victim = lists_[tier].back();
  tier_used_[tier] -= victim.size;
  map_.erase(victim.object);
  lists_[tier].pop_back();
  sub_used(victim.size);
  return victim;
}

void TieredCache::erase(trace::ObjectId object) {
  const auto it = map_.find(object);
  if (it == map_.end()) return;
  const int tier = it->second->tier;
  tier_used_[tier] -= it->second->size;
  sub_used(it->second->size);
  lists_[tier].erase(it->second);
  map_.erase(it);
}

}  // namespace lfo::cache
