#ifndef LFO_CACHE_RL_CACHE_HPP
#define LFO_CACHE_RL_CACHE_HPP

#include <array>
#include <unordered_map>

#include "cache/lru.hpp"
#include "util/rng.hpp"

namespace lfo::cache {

/// Model-free reinforcement-learning cache admission (the "RLC" baseline
/// of the paper's Fig 1, after Lecuyer et al., HotNets 2017).
///
/// A tabular Q-learner decides admit/bypass over a coarse state space
/// (object-size bucket x recency bucket). The reward for an admission
/// arrives only at the object's *next* request — the delayed-reward
/// problem the paper identifies as the root cause of RL's struggles in
/// caching. Eviction is LRU. The agent is intentionally faithful to the
/// model-free setup: no future knowledge, epsilon-greedy exploration.
struct RlParams {
  double learning_rate = 0.1;
  double discount = 0.95;
  double epsilon = 0.1;            ///< exploration probability
  double bypass_penalty = 0.0;     ///< reward for a bypassed re-request
  double occupancy_penalty = 0.2;  ///< cost of admitting a non-reused obj
};

class RlCache : public LruCache {
 public:
  RlCache(std::uint64_t capacity, RlParams params = {},
          std::uint64_t seed = 1);

  std::string name() const override { return "RLC"; }

  /// Mean Q-value spread (diagnostics for convergence experiments).
  double q_spread() const;

 protected:
  void on_hit(const trace::Request& request) override;
  void on_miss(const trace::Request& request) override;

 private:
  static constexpr std::uint32_t kSizeBuckets = 8;
  static constexpr std::uint32_t kRecencyBuckets = 8;
  static constexpr std::uint32_t kStates = kSizeBuckets * kRecencyBuckets;

  struct Pending {
    std::uint32_t state;
    std::uint8_t action;  // 1 = admit, 0 = bypass
  };

  std::uint32_t state_of(const trace::Request& request) const;
  void reward_pending(trace::ObjectId object, bool hit,
                      std::uint32_t next_state);
  double& q(std::uint32_t state, std::uint8_t action);

  RlParams params_;
  util::Rng rng_;
  std::array<double, kStates * 2> q_table_{};
  std::unordered_map<trace::ObjectId, Pending> pending_;
  std::unordered_map<trace::ObjectId, std::uint64_t> last_seen_;
};

}  // namespace lfo::cache

#endif  // LFO_CACHE_RL_CACHE_HPP
