#include "cache/factory.hpp"

#include <stdexcept>

#include "cache/adaptsize.hpp"
#include "cache/arc.hpp"
#include "cache/bloom_admission.hpp"
#include "cache/gd_wheel.hpp"
#include "cache/greedy_dual.hpp"
#include "cache/hyperbolic.hpp"
#include "cache/lfuda.hpp"
#include "cache/lhd.hpp"
#include "cache/lru.hpp"
#include "cache/lru_k.hpp"
#include "cache/random_cache.hpp"
#include "cache/rl_cache.hpp"
#include "cache/s4lru.hpp"
#include "cache/tiered.hpp"
#include "cache/tinylfu.hpp"
#include "util/strings.hpp"

namespace lfo::cache {

CachePolicyPtr make_policy(const std::string& name, std::uint64_t capacity,
                           std::uint64_t seed) {
  if (name == "Random") return std::make_unique<RandomCache>(capacity, seed);
  if (name == "FIFO") return std::make_unique<FifoCache>(capacity);
  if (name == "ARC") return std::make_unique<ArcCache>(capacity);
  if (name == "LRU") return std::make_unique<LruCache>(capacity);
  if (name.rfind("LRU-", 0) == 0) {
    const auto k = util::parse_uint(std::string_view(name).substr(4));
    if (k && *k >= 1) {
      return std::make_unique<LruKCache>(capacity,
                                         static_cast<std::uint32_t>(*k));
    }
  }
  if (name == "LFU") return std::make_unique<LfudaCache>(capacity, false);
  if (name == "LFUDA") return std::make_unique<LfudaCache>(capacity, true);
  if (name.size() > 4 && name.front() == 'S' &&
      name.substr(name.size() - 3) == "LRU") {
    const auto s = util::parse_uint(
        std::string_view(name).substr(1, name.size() - 4));
    if (s && *s >= 1) {
      return std::make_unique<SegmentedLruCache>(
          capacity, static_cast<std::uint32_t>(*s));
    }
  }
  if (name == "GDS") {
    return std::make_unique<GreedyDualCache>(capacity,
                                             GreedyDualVariant::kGds);
  }
  if (name == "GDSF") {
    return std::make_unique<GreedyDualCache>(capacity,
                                             GreedyDualVariant::kGdsf);
  }
  if (name == "GD-Wheel") return std::make_unique<GdWheelCache>(capacity);
  if (name == "AdaptSize") {
    return std::make_unique<AdaptSizeCache>(capacity, 1 << 16, seed);
  }
  if (name == "Hyperbolic") {
    return std::make_unique<HyperbolicCache>(capacity, 64, true, seed);
  }
  if (name == "LHD") return std::make_unique<LhdCache>(capacity, 64, seed);
  if (name == "TinyLFU") return std::make_unique<TinyLfuCache>(capacity);
  if (name == "SecondHit") return std::make_unique<SecondHitCache>(capacity);
  if (name == "Tiered") {
    // 1:7 RAM:disk split, the common CDN-server shape.
    const auto fast = std::max<std::uint64_t>(1, capacity / 8);
    return std::make_unique<TieredCache>(fast, capacity - fast);
  }
  if (name == "RLC") {
    return std::make_unique<RlCache>(capacity, RlParams{}, seed);
  }
  if (name == "Infinite") return std::make_unique<InfiniteCache>(capacity);
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

std::vector<std::string> policy_names() {
  return {"Random",    "FIFO",       "ARC",       "LRU",     "LRU-2",   "LFU",
          "LFUDA",     "S4LRU",      "GDS",     "GDSF",    "GD-Wheel",
          "AdaptSize", "Hyperbolic", "LHD",     "TinyLFU", "SecondHit",
          "Tiered",    "RLC",        "Infinite"};
}

}  // namespace lfo::cache
