#ifndef LFO_CACHE_HYPERBOLIC_HPP
#define LFO_CACHE_HYPERBOLIC_HPP

#include <unordered_map>
#include <vector>

#include "cache/policy.hpp"
#include "util/rng.hpp"

namespace lfo::cache {

/// Hyperbolic caching [Blankstein, Sen & Freedman, USENIX ATC 2017].
/// Each object's priority decays hyperbolically: p = n_i / (t - t_i) where
/// n_i counts accesses since insertion at time t_i. There is no global
/// ordering structure; eviction draws a uniform sample of S cached objects
/// and evicts the lowest-priority one (the paper's lazy sampling design).
/// With size awareness the priority is divided by the object size.
class HyperbolicCache : public CachePolicy {
 public:
  HyperbolicCache(std::uint64_t capacity, std::uint32_t sample_size = 64,
                  bool size_aware = true, std::uint64_t seed = 1);

  std::string name() const override { return "Hyperbolic"; }
  bool contains(trace::ObjectId object) const override;
  void clear() override;

 protected:
  void on_hit(const trace::Request& request) override;
  void on_miss(const trace::Request& request) override;

 private:
  struct Entry {
    trace::ObjectId object;
    std::uint64_t size;
    std::uint64_t access_count;
    std::uint64_t insert_time;
  };

  double priority(const Entry& e) const;
  void evict_one();

  std::uint32_t sample_size_;
  bool size_aware_;
  util::Rng rng_;
  std::vector<Entry> slots_;  // swap-with-back for O(1) sampling
  std::unordered_map<trace::ObjectId, std::size_t> index_;
};

}  // namespace lfo::cache

#endif  // LFO_CACHE_HYPERBOLIC_HPP
