#include "cache/policy.hpp"

#include <cassert>
#include <stdexcept>

namespace lfo::cache {

CachePolicy::CachePolicy(std::uint64_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("CachePolicy: zero capacity");
  }
}

bool CachePolicy::access(const trace::Request& request) {
  ++clock_;
  ++stats_.requests;
  stats_.bytes_requested += request.size;
  const bool hit = contains(request.object);
  if (hit) {
    ++stats_.hits;
    stats_.bytes_hit += request.size;
    on_hit(request);
  } else {
    on_miss(request);
  }
  assert(used_ <= capacity_ && "policy exceeded cache capacity");
  return hit;
}

void CachePolicy::add_used(std::uint64_t bytes) {
  used_ += bytes;
  if (used_ > capacity_) {
    throw std::logic_error(name() + ": capacity exceeded");
  }
}

void CachePolicy::sub_used(std::uint64_t bytes) {
  if (bytes > used_) {
    throw std::logic_error(name() + ": negative used bytes");
  }
  used_ -= bytes;
}

}  // namespace lfo::cache
