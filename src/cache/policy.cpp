#include "cache/policy.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace lfo::cache {

CachePolicy::CachePolicy(std::uint64_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("CachePolicy: zero capacity");
  }
}

bool CachePolicy::access(const trace::Request& request) {
  ++clock_;
  const auto before = stats_;
  ++stats_.requests;
  stats_.bytes_requested += request.size;
  bool hit = contains(request.object);
  if (hit && expired(request)) {
    // Stale copy: an expired hit is a miss that must re-admit. The policy
    // drops the dead entry first so on_miss sees a genuinely absent
    // object (and so the stale bytes can never be served).
    ++stats_.expired_hits;
    on_expired(request);
    LFO_CHECK(!contains(request.object))
        << name() << ": on_expired must evict the stale object";
    hit = false;
  }
  if (hit) {
    ++stats_.hits;
    stats_.bytes_hit += request.size;
    on_hit(request);
  } else {
    on_miss(request);
  }
  // Always-on capacity invariant: a policy must evict enough bytes before
  // admitting. This fires in release builds too — silent accounting drift
  // is the classic failure mode of learned policies.
  LFO_CHECK_LE(used_, capacity_)
      << name() << " exceeded cache capacity on request " << clock_;
  // Stats are monotone and bounded by the request stream.
  LFO_DCHECK_LE(stats_.hits, stats_.requests) << name();
  LFO_DCHECK_LE(stats_.bytes_hit, stats_.bytes_requested) << name();
  LFO_DCHECK_GE(stats_.requests, before.requests) << name();
  return hit;
}

void CachePolicy::add_used(std::uint64_t bytes) {
  used_ += bytes;
  LFO_CHECK_LE(used_, capacity_) << name() << ": admission over capacity";
}

void CachePolicy::sub_used(std::uint64_t bytes) {
  LFO_CHECK_LE(bytes, used_) << name() << ": eviction of unaccounted bytes";
  used_ -= bytes;
}

}  // namespace lfo::cache
