#ifndef LFO_CACHE_LRU_HPP
#define LFO_CACHE_LRU_HPP

#include <list>
#include <unordered_map>

#include "cache/policy.hpp"

namespace lfo::cache {

/// Classic least-recently-used cache. Admits every object that fits;
/// objects larger than the cache are bypassed.
class LruCache : public CachePolicy {
 public:
  explicit LruCache(std::uint64_t capacity);

  std::string name() const override { return "LRU"; }
  bool contains(trace::ObjectId object) const override;
  void clear() override;

 protected:
  void on_hit(const trace::Request& request) override;
  void on_miss(const trace::Request& request) override;

  struct Entry {
    trace::ObjectId object;
    std::uint64_t size;
  };
  using LruList = std::list<Entry>;

  /// Evict LRU entries until `needed` bytes fit. Returns false if even a
  /// fully empty cache cannot hold them.
  bool make_room(std::uint64_t needed);
  void insert_mru(const trace::Request& request);
  void evict_lru();

  LruList list_;  // front = MRU, back = LRU
  std::unordered_map<trace::ObjectId, LruList::iterator> map_;
};

/// First-in-first-out variant: no promotion on hit. A baseline and a
/// regression oracle (LRU must beat FIFO on recency-friendly traces).
class FifoCache : public LruCache {
 public:
  explicit FifoCache(std::uint64_t capacity) : LruCache(capacity) {}
  std::string name() const override { return "FIFO"; }

 protected:
  void on_hit(const trace::Request& request) override;
};

/// Infinite capacity reference: every object is admitted and never evicted
/// (capacity is only used for the free-bytes report). Gives the compulsory
/// miss rate, the upper bound on any real policy.
class InfiniteCache : public CachePolicy {
 public:
  explicit InfiniteCache(std::uint64_t capacity) : CachePolicy(capacity) {}
  std::string name() const override { return "Infinite"; }
  bool contains(trace::ObjectId object) const override {
    return objects_.contains(object);
  }
  void clear() override { objects_.clear(); }

 protected:
  void on_hit(const trace::Request&) override {}
  void on_miss(const trace::Request& request) override {
    objects_.emplace(request.object, request.size);
  }

 private:
  std::unordered_map<trace::ObjectId, std::uint64_t> objects_;
};

}  // namespace lfo::cache

#endif  // LFO_CACHE_LRU_HPP
