#ifndef LFO_OBS_FLIGHT_RECORDER_HPP
#define LFO_OBS_FLIGHT_RECORDER_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace lfo::obs {

/// One recorded telemetry frame: a full registry snapshot captured at a
/// point in time, plus the per-counter increments since the previous
/// frame. Counter values in `snapshot` are cumulative (never reset);
/// `counter_deltas` holds the step this frame contributed, so a frame
/// sequence reads as a metric *time series* — "the fallback at window 17
/// shows up as an lfo_rollout_fallback_total step of 1" — without the
/// consumer diffing adjacent frames itself.
struct FlightFrame {
  /// Strictly increasing per recorder (not reset by ring eviction), so
  /// gaps after overflow are detectable: frame k is the k-th capture.
  std::uint64_t sequence = 0;
  /// Capture time on the process monotonic clock, in seconds.
  double monotonic_seconds = 0.0;
  /// Why the frame was captured: "window" (pipeline boundary),
  /// "interval" (background timer), or a caller-chosen label.
  std::string label;
  /// Window index for "window" frames; kNoWindow otherwise.
  std::uint64_t window_index = kNoWindow;
  /// Full registry state at capture (cumulative counter values).
  MetricsSnapshot snapshot;
  /// name -> (value at this frame) - (value at the previous frame), for
  /// every counter present in `snapshot`. A counter first seen in this
  /// frame contributes its full value (delta from an implicit 0).
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;

  static constexpr std::uint64_t kNoWindow = ~0ULL;

  /// Convenience lookups into `snapshot` / `counter_deltas`; return
  /// `missing` when the name was not captured.
  std::uint64_t counter(std::string_view name,
                        std::uint64_t missing = 0) const;
  std::uint64_t counter_delta(std::string_view name,
                              std::uint64_t missing = 0) const;
  double gauge(std::string_view name, double missing = 0.0) const;
};

/// Fixed-capacity ring of timestamped MetricsSnapshot deltas — the
/// in-process flight recorder behind `/stats?history=N`. The windowed
/// driver records one frame per window boundary
/// (core::WindowedConfig::flight_recorder); an optional background
/// thread adds wall-clock "interval" frames between boundaries. All
/// captures are pure registry reads: recording can never change caching
/// decisions (enforced by the same_decisions tests in
/// tests/test_telemetry_server.cpp).
///
/// Thread safety: record()/history()/dump_jsonl() may race freely; one
/// internal mutex orders frames, so deltas are consistent — each
/// counter's cumulative value is non-decreasing across the frame
/// sequence (counters are monotonic and frames are serialized).
class FlightRecorder {
 public:
  /// `capacity` frames are kept; the oldest is evicted on overflow.
  explicit FlightRecorder(std::size_t capacity = 256);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Capture one frame now. Returns a copy of the recorded frame.
  FlightFrame record(std::string label,
                     std::uint64_t window_index = FlightFrame::kNoWindow);

  /// The most recent min(n, size()) frames, oldest first.
  std::vector<FlightFrame> history(std::size_t n) const;

  std::size_t capacity() const { return capacity_; }
  /// Frames currently retained (<= capacity).
  std::size_t size() const;
  /// Frames ever recorded (== the next frame's sequence).
  std::uint64_t total_recorded() const;
  /// Drop all frames and reset the delta baseline (sequence keeps
  /// counting, so post-clear frames are distinguishable).
  void clear();

  /// Append every retained frame as one JSON object per line (JSONL),
  /// oldest first. Each line parses standalone: sequence, label,
  /// timestamps, counters (cumulative), counter_deltas, gauges,
  /// histograms.
  void dump_jsonl(std::ostream& os) const;

  /// Start a background thread recording an "interval" frame every
  /// `seconds` (> 0) until stop_interval_capture() or destruction.
  /// Wall-clock only — frames observe the registry, never mutate it.
  void start_interval_capture(double seconds);
  void stop_interval_capture();
  bool interval_capture_running() const;

 private:
  FlightFrame capture_locked(std::string label, std::uint64_t window_index)
      LFO_REQUIRES(mu_);

  const std::size_t capacity_;
  mutable util::Mutex mu_;
  std::deque<FlightFrame> frames_ LFO_GUARDED_BY(mu_);
  std::uint64_t total_ LFO_GUARDED_BY(mu_) = 0;
  /// Cumulative counter values at the previous capture (delta baseline).
  std::map<std::string, std::uint64_t, std::less<>> prev_counters_
      LFO_GUARDED_BY(mu_);

  util::Mutex interval_mu_;
  util::CondVar interval_cv_;
  bool interval_stop_ LFO_GUARDED_BY(interval_mu_) = false;
  std::thread interval_thread_;
};

/// Serialize one frame as a single-line JSON object (no trailing
/// newline) — shared by dump_jsonl() and the /stats history array.
void write_frame_json(std::ostream& os, const FlightFrame& frame);

}  // namespace lfo::obs

#endif  // LFO_OBS_FLIGHT_RECORDER_HPP
