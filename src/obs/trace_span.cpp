#include "obs/trace_span.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "obs/exporters.hpp"
#include "util/thread_annotations.hpp"

namespace lfo::obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};

/// One complete (destructed) span. `name` points at a string literal.
struct SpanRecord {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
};

/// Per-thread span storage. The owning thread appends under `mu`
/// (uncontended in steady state — the exporter only locks after the
/// workload quiesces); the buffer outlives its thread via shared_ptr so
/// pool threads that exit before export lose nothing.
struct ThreadBuffer {
  util::Mutex mu;
  /// Written once (under the collector's lock) before the buffer is
  /// published; immutable afterwards, so readable without `mu`.
  std::uint32_t tid = 0;
  std::string label LFO_GUARDED_BY(mu);
  std::vector<SpanRecord> spans LFO_GUARDED_BY(mu);
  std::uint64_t dropped LFO_GUARDED_BY(mu) = 0;
};

constexpr std::size_t kMaxSpansPerThread = 1 << 20;

struct Collector {
  util::Mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers LFO_GUARDED_BY(mu);
  std::uint32_t next_tid LFO_GUARDED_BY(mu) = 1;
};

Collector& collector() {
  static Collector c;
  return c;
}

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (!buffer) {
    auto fresh = std::make_shared<ThreadBuffer>();
    auto& c = collector();
    const util::MutexLock lock(c.mu);
    fresh->tid = c.next_tid++;
    c.buffers.push_back(fresh);
    buffer = std::move(fresh);
  }
  return *buffer;
}

std::vector<std::shared_ptr<ThreadBuffer>> all_buffers() {
  auto& c = collector();
  const util::MutexLock lock(c.mu);
  return c.buffers;
}

}  // namespace

bool tracing_enabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void set_thread_label(std::string label) {
  auto& buf = thread_buffer();
  const util::MutexLock lock(buf.mu);
  buf.label = std::move(label);
}

void clear_trace() {
  for (const auto& buf : all_buffers()) {
    const util::MutexLock lock(buf->mu);
    buf->spans.clear();
    buf->dropped = 0;
  }
}

std::size_t recorded_span_count() {
  std::size_t total = 0;
  for (const auto& buf : all_buffers()) {
    const util::MutexLock lock(buf->mu);
    total += buf->spans.size();
  }
  return total;
}

TraceSpan::TraceSpan(const char* name) {
  if (!tracing_enabled()) return;
  name_ = name;
  begin_ns_ = detail::monotonic_ns();
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  const auto end_ns = detail::monotonic_ns();
  auto& buf = thread_buffer();
  const util::MutexLock lock(buf.mu);
  if (buf.spans.size() >= kMaxSpansPerThread) {
    ++buf.dropped;
    return;
  }
  buf.spans.push_back({name_, begin_ns_, end_ns});
}

void write_chrome_trace(std::ostream& os) {
  struct ThreadDump {
    std::uint32_t tid;
    std::string label;
    std::vector<SpanRecord> spans;
  };
  std::vector<ThreadDump> dumps;
  std::uint64_t epoch = std::numeric_limits<std::uint64_t>::max();
  for (const auto& buf : all_buffers()) {
    ThreadDump dump;
    {
      const util::MutexLock lock(buf->mu);
      dump.tid = buf->tid;
      dump.label = buf->label;
      dump.spans = buf->spans;
    }
    for (const auto& s : dump.spans) epoch = std::min(epoch, s.begin_ns);
    dumps.push_back(std::move(dump));
  }
  if (epoch == std::numeric_limits<std::uint64_t>::max()) epoch = 0;

  const auto us_since_epoch = [epoch](std::uint64_t ns) {
    return static_cast<double>(ns - epoch) / 1000.0;
  };

  os << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](std::uint32_t tid, const char* ph, const char* name,
                        std::uint64_t ts_ns) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escaped(name) << "\",\"cat\":\"lfo\",\"ph\":\""
       << ph << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
    const auto old_precision = os.precision(3);
    os << std::fixed << us_since_epoch(ts_ns);
    os.unsetf(std::ios_base::fixed);
    os.precision(old_precision);
    os << '}';
  };

  for (auto& dump : dumps) {
    // Thread lane label (metadata event).
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << dump.tid << ",\"args\":{\"name\":\""
       << json_escaped(dump.label.empty()
                           ? "thread-" + std::to_string(dump.tid)
                           : dump.label)
       << "\"}}";

    // Spans on one thread nest properly (RAII), so serializing them as
    // B/E pairs only needs an interval-containment sweep: outer spans
    // first (begin asc, end desc), close every span that ends before the
    // next one begins.
    std::sort(dump.spans.begin(), dump.spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
                return a.end_ns > b.end_ns;
              });
    std::vector<const SpanRecord*> open;
    for (const auto& span : dump.spans) {
      while (!open.empty() && open.back()->end_ns <= span.begin_ns) {
        emit(dump.tid, "E", open.back()->name, open.back()->end_ns);
        open.pop_back();
      }
      emit(dump.tid, "B", span.name, span.begin_ns);
      open.push_back(&span);
    }
    while (!open.empty()) {
      emit(dump.tid, "E", open.back()->name, open.back()->end_ns);
      open.pop_back();
    }
  }
  os << "]}";
}

}  // namespace lfo::obs
