#ifndef LFO_OBS_TRACE_SPAN_HPP
#define LFO_OBS_TRACE_SPAN_HPP

#include <cstdint>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"

namespace lfo::obs {

/// Runtime toggle for span collection. Off by default: a disabled
/// TraceSpan costs one relaxed load. Enable around the region of
/// interest, then write_chrome_trace() the result.
bool tracing_enabled();
void set_tracing_enabled(bool enabled);

/// Label the calling thread's lane in the trace viewer ("serve",
/// "train", ...). Exported as a chrome://tracing thread_name metadata
/// event; cheap to call repeatedly (overwrites the label).
void set_thread_label(std::string label);

/// Drop every recorded span (benchmarks / tests reuse the process).
void clear_trace();

/// Number of complete spans currently recorded across all threads.
std::size_t recorded_span_count();

/// Serialize all recorded spans as chrome://tracing "JSON Array Format":
/// {"traceEvents":[...]}. Every span becomes a balanced B/E event pair
/// tagged with its thread id, so the async train-vs-serve overlap shows
/// up as separate lanes in chrome://tracing or Perfetto. Timestamps are
/// microseconds relative to the earliest recorded span.
void write_chrome_trace(std::ostream& os);

/// RAII span: records [construction, destruction) on the calling
/// thread. `name` must outlive the collector (string literals). Spans
/// nest properly per thread by construction, which is what guarantees
/// balanced B/E pairs in the export.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  // null = tracing was off at construction
  std::uint64_t begin_ns_ = 0;
};

/// RAII timer: observes the scope's duration into a LatencyHistogram
/// (and is independent of the tracing toggle).
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram& histogram)
      : histogram_(&histogram), begin_ns_(detail::monotonic_ns()) {}
  ~ScopedTimer() {
    histogram_->observe_ns(detail::monotonic_ns() - begin_ns_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* histogram_;
  std::uint64_t begin_ns_;
};

}  // namespace lfo::obs

#if LFO_METRICS_ENABLED

/// Trace the enclosing scope under `name` (a string literal).
#define LFO_TRACE_SPAN(name) \
  ::lfo::obs::TraceSpan LFO_OBS_CONCAT(lfo_trace_span_, __LINE__)(name)

/// Label the calling thread's trace lane.
#define LFO_TRACE_THREAD_LABEL(label)          \
  do {                                         \
    if (::lfo::obs::tracing_enabled()) {       \
      ::lfo::obs::set_thread_label(label);     \
    }                                          \
  } while (0)

/// Time the enclosing scope into the named registry histogram.
#define LFO_SCOPED_TIMER(name)                                        \
  static ::lfo::obs::LatencyHistogram&                                \
      LFO_OBS_CONCAT(lfo_scoped_timer_hist_, __LINE__) =              \
          ::lfo::obs::MetricsRegistry::instance().histogram(name);    \
  ::lfo::obs::ScopedTimer LFO_OBS_CONCAT(lfo_scoped_timer_, __LINE__)(\
      LFO_OBS_CONCAT(lfo_scoped_timer_hist_, __LINE__))

#else

#define LFO_TRACE_SPAN(name) \
  do {                       \
  } while (0)
#define LFO_TRACE_THREAD_LABEL(label) \
  do {                                \
  } while (0)
#define LFO_SCOPED_TIMER(name) \
  do {                         \
  } while (0)

#endif  // LFO_METRICS_ENABLED

#endif  // LFO_OBS_TRACE_SPAN_HPP
