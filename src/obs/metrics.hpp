#ifndef LFO_OBS_METRICS_HPP
#define LFO_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// Compile-time gate for the whole instrumentation layer. The build sets
/// LFO_METRICS_ENABLED=0 (cmake -DLFO_METRICS=OFF) to compile every
/// LFO_COUNTER_* / LFO_GAUGE_* / LFO_HISTOGRAM_* / LFO_TRACE_* call site
/// in the pipeline down to nothing, so golden decisions and throughput
/// are provably unaffected. The obs classes themselves stay available in
/// both modes (exporters, tests and the model-health report fields do
/// not depend on the gate).
#ifndef LFO_METRICS_ENABLED
#define LFO_METRICS_ENABLED 1
#endif

namespace lfo::obs {

/// Monotonically increasing event count. Lock-free: one relaxed
/// fetch_add on the hot path; cache-line aligned so independent counters
/// never false-share.
class alignas(64) Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written double value (queue depths, ratios, window metrics).
/// Relaxed store/load; add() is a CAS loop for the rare accumulating use.
class alignas(64) Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram with streaming quantiles. Buckets are
/// powers of two in nanoseconds (bucket i holds durations whose
/// bit_width is i, i.e. [2^(i-1), 2^i) ns), so observe() is a bit scan
/// plus one relaxed increment — cheap enough for sampled per-request
/// timing. Quantiles interpolate linearly inside the containing bucket.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe_ns(std::uint64_t ns);
  void observe_seconds(double seconds);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum_seconds() const;
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i, in seconds.
  static double bucket_upper_seconds(std::size_t i);
  /// Streaming quantile estimate in seconds; q clamped to [0,1].
  /// Returns quiet NaN when no observations were recorded (matching
  /// util::Percentiles); the JSONL exporter maps that to null.
  double quantile(double q) const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// One consistent read of the registry, for the exporters.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
    /// (upper bound seconds, cumulative count) for every non-empty
    /// bucket boundary, ascending.
    std::vector<std::pair<double, std::uint64_t>> cumulative_buckets;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Process-wide named metrics. Registration (first lookup of a name)
/// takes a mutex; after that the returned reference is stable for the
/// process lifetime and the hot path touches only its own atomic. The
/// LFO_COUNTER_* macros cache that reference in a function-local static,
/// so steady-state cost is one branch + one relaxed atomic op.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// Names sorted ascending within each kind (deterministic export).
  MetricsSnapshot snapshot() const;
  /// Zero every registered metric (benchmarks / tests). References
  /// handed out earlier stay valid.
  void reset_all();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Runtime toggle checked by every instrumentation macro (one relaxed
/// load). Defaults to enabled; bench_fig7_throughput flips it to measure
/// instrumented-vs-off overhead inside a single binary.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

namespace detail {
std::uint64_t monotonic_ns();
}  // namespace detail

}  // namespace lfo::obs

#define LFO_OBS_CONCAT_INNER(a, b) a##b
#define LFO_OBS_CONCAT(a, b) LFO_OBS_CONCAT_INNER(a, b)

#if LFO_METRICS_ENABLED

#define LFO_COUNTER_ADD(name, delta)                               \
  do {                                                             \
    if (::lfo::obs::metrics_enabled()) {                           \
      static ::lfo::obs::Counter& lfo_obs_counter_ref =            \
          ::lfo::obs::MetricsRegistry::instance().counter(name);   \
      lfo_obs_counter_ref.add(                                     \
          static_cast<std::uint64_t>(delta));                      \
    }                                                              \
  } while (0)

#define LFO_COUNTER_INC(name) LFO_COUNTER_ADD(name, 1)

#define LFO_GAUGE_SET(name, v)                                     \
  do {                                                             \
    if (::lfo::obs::metrics_enabled()) {                           \
      static ::lfo::obs::Gauge& lfo_obs_gauge_ref =                \
          ::lfo::obs::MetricsRegistry::instance().gauge(name);     \
      lfo_obs_gauge_ref.set(static_cast<double>(v));               \
    }                                                              \
  } while (0)

#define LFO_HISTOGRAM_OBSERVE_SECONDS(name, seconds)               \
  do {                                                             \
    if (::lfo::obs::metrics_enabled()) {                           \
      static ::lfo::obs::LatencyHistogram& lfo_obs_hist_ref =      \
          ::lfo::obs::MetricsRegistry::instance().histogram(name); \
      lfo_obs_hist_ref.observe_seconds(seconds);                   \
    }                                                              \
  } while (0)

#else  // !LFO_METRICS_ENABLED — every call site compiles to nothing.

#define LFO_COUNTER_ADD(name, delta) \
  do {                               \
  } while (0)
#define LFO_COUNTER_INC(name) \
  do {                        \
  } while (0)
#define LFO_GAUGE_SET(name, v) \
  do {                         \
  } while (0)
#define LFO_HISTOGRAM_OBSERVE_SECONDS(name, seconds) \
  do {                                               \
  } while (0)

#endif  // LFO_METRICS_ENABLED

#endif  // LFO_OBS_METRICS_HPP
