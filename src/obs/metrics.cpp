#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>

#include "util/thread_annotations.hpp"

namespace lfo::obs {

namespace {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace detail {
std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace detail

void Gauge::add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::observe_ns(std::uint64_t ns) {
  const auto idx = std::min<std::size_t>(std::bit_width(ns), kBuckets - 1);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

void LatencyHistogram::observe_seconds(double seconds) {
  if (!(seconds > 0.0)) {
    observe_ns(0);
    return;
  }
  observe_ns(static_cast<std::uint64_t>(seconds * 1e9));
}

double LatencyHistogram::sum_seconds() const {
  return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

double LatencyHistogram::bucket_upper_seconds(std::size_t i) {
  // Bucket i holds ns values with bit_width == i: upper bound 2^i - 1.
  if (i == 0) return 0.0;
  if (i >= kBuckets - 1) return std::ldexp(1.0, 63) * 1e-9;
  return (std::ldexp(1.0, static_cast<int>(i)) - 1.0) * 1e-9;
}

double LatencyHistogram::quantile(double q) const {
  const auto total = count();
  // NaN for "no observations", matching util::Percentiles: a 0.0
  // latency estimate from an empty histogram is indistinguishable from
  // a real sub-nanosecond measurement. Exporters map it to JSON null.
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total - 1);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const auto in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket - 1) >= target) {
      // Interpolate linearly inside [lower, upper] of this bucket.
      const double lower = i == 0 ? 0.0 : bucket_upper_seconds(i - 1);
      const double upper = bucket_upper_seconds(i);
      const double into =
          in_bucket == 1
              ? 0.0
              : (target - static_cast<double>(cum)) /
                    static_cast<double>(in_bucket - 1);
      return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
    }
    cum += in_bucket;
  }
  return bucket_upper_seconds(kBuckets - 1);
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- registry

struct MetricsRegistry::Impl {
  mutable util::Mutex mu;
  // std::map nodes are stable: references returned by the lookup methods
  // survive any later registration, so only the maps themselves — not
  // the atomic metric objects inside them — need the lock.
  std::map<std::string, Counter, std::less<>> counters LFO_GUARDED_BY(mu);
  std::map<std::string, Gauge, std::less<>> gauges LFO_GUARDED_BY(mu);
  std::map<std::string, LatencyHistogram, std::less<>> histograms
      LFO_GUARDED_BY(mu);
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl impl;
  return impl;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto& im = impl();
  const util::MutexLock lock(im.mu);
  const auto it = im.counters.find(name);
  if (it != im.counters.end()) return it->second;
  return im.counters.emplace(std::piecewise_construct,
                             std::forward_as_tuple(name),
                             std::forward_as_tuple())
      .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto& im = impl();
  const util::MutexLock lock(im.mu);
  const auto it = im.gauges.find(name);
  if (it != im.gauges.end()) return it->second;
  return im.gauges.emplace(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple())
      .first->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  auto& im = impl();
  const util::MutexLock lock(im.mu);
  const auto it = im.histograms.find(name);
  if (it != im.histograms.end()) return it->second;
  return im.histograms.emplace(std::piecewise_construct,
                               std::forward_as_tuple(name),
                               std::forward_as_tuple())
      .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  auto& im = impl();
  const util::MutexLock lock(im.mu);
  MetricsSnapshot snap;
  snap.counters.reserve(im.counters.size());
  for (const auto& [name, c] : im.counters) {
    snap.counters.push_back({name, c.value()});
  }
  snap.gauges.reserve(im.gauges.size());
  for (const auto& [name, g] : im.gauges) {
    snap.gauges.push_back({name, g.value()});
  }
  snap.histograms.reserve(im.histograms.size());
  for (const auto& [name, h] : im.histograms) {
    MetricsSnapshot::HistogramSample sample;
    sample.name = name;
    sample.count = h.count();
    sample.sum_seconds = h.sum_seconds();
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      const auto in_bucket = h.bucket_count(i);
      if (in_bucket == 0) continue;
      cum += in_bucket;
      sample.cumulative_buckets.emplace_back(
          LatencyHistogram::bucket_upper_seconds(i), cum);
    }
    // observe_ns() bumps its bucket and count_ as two relaxed ops, so a
    // snapshot racing live observers can read a bucket increment whose
    // count_ increment it hasn't seen. Clamp so the exported exposition
    // keeps the Prometheus invariant `+Inf bucket (== count) >= every
    // cumulative bucket` — scrapers diff these and reject regressions.
    sample.count = std::max(sample.count, cum);
    sample.p50 = h.quantile(0.50);
    sample.p90 = h.quantile(0.90);
    sample.p99 = h.quantile(0.99);
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

void MetricsRegistry::reset_all() {
  auto& im = impl();
  const util::MutexLock lock(im.mu);
  for (auto& [name, c] : im.counters) c.reset();
  for (auto& [name, g] : im.gauges) g.reset();
  for (auto& [name, h] : im.histograms) h.reset();
}

}  // namespace lfo::obs
