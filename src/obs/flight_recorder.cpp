#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/exporters.hpp"
#include "util/check.hpp"

namespace lfo::obs {

std::uint64_t FlightFrame::counter(std::string_view name,
                                   std::uint64_t missing) const {
  for (const auto& c : snapshot.counters) {
    if (c.name == name) return c.value;
  }
  return missing;
}

std::uint64_t FlightFrame::counter_delta(std::string_view name,
                                         std::uint64_t missing) const {
  for (const auto& [n, delta] : counter_deltas) {
    if (n == name) return delta;
  }
  return missing;
}

double FlightFrame::gauge(std::string_view name, double missing) const {
  for (const auto& g : snapshot.gauges) {
    if (g.name == name) return g.value;
  }
  return missing;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

FlightRecorder::~FlightRecorder() { stop_interval_capture(); }

FlightFrame FlightRecorder::capture_locked(std::string label,
                                           std::uint64_t window_index) {
  FlightFrame frame;
  frame.sequence = total_++;
  frame.monotonic_seconds =
      static_cast<double>(detail::monotonic_ns()) * 1e-9;
  frame.label = std::move(label);
  frame.window_index = window_index;
  frame.snapshot = MetricsRegistry::instance().snapshot();
  frame.counter_deltas.reserve(frame.snapshot.counters.size());
  for (const auto& c : frame.snapshot.counters) {
    const auto it = prev_counters_.find(c.name);
    const std::uint64_t prev =
        it != prev_counters_.end() ? it->second : 0;
    // Counters are monotonic and frames are serialized under mu_, so a
    // value below the previous frame's means registry corruption (or a
    // reset_all between frames, which tests must do before recording).
    frame.counter_deltas.emplace_back(c.name,
                                      c.value >= prev ? c.value - prev : 0);
    prev_counters_[c.name] = c.value;
  }
  frames_.push_back(frame);
  if (frames_.size() > capacity_) frames_.pop_front();
  return frame;
}

FlightFrame FlightRecorder::record(std::string label,
                                   std::uint64_t window_index) {
  const util::MutexLock lock(mu_);
  return capture_locked(std::move(label), window_index);
}

std::vector<FlightFrame> FlightRecorder::history(std::size_t n) const {
  const util::MutexLock lock(mu_);
  const std::size_t take = std::min(n, frames_.size());
  return {frames_.end() - static_cast<std::ptrdiff_t>(take), frames_.end()};
}

std::size_t FlightRecorder::size() const {
  const util::MutexLock lock(mu_);
  return frames_.size();
}

std::uint64_t FlightRecorder::total_recorded() const {
  const util::MutexLock lock(mu_);
  return total_;
}

void FlightRecorder::clear() {
  const util::MutexLock lock(mu_);
  frames_.clear();
  prev_counters_.clear();
}

void FlightRecorder::dump_jsonl(std::ostream& os) const {
  const auto frames = history(capacity_);
  for (const auto& frame : frames) {
    write_frame_json(os, frame);
    os << '\n';
  }
}

void FlightRecorder::start_interval_capture(double seconds) {
  LFO_CHECK(seconds > 0.0)
      << "interval capture period must be positive, got " << seconds;
  stop_interval_capture();
  {
    const util::MutexLock lock(interval_mu_);
    interval_stop_ = false;
  }
  interval_thread_ = std::thread([this, seconds] {
    util::MutexLock lock(interval_mu_);
    while (!interval_stop_) {
      if (interval_cv_.wait_for_seconds(interval_mu_, seconds)) {
        continue;  // woken early: re-check the stop flag
      }
      if (interval_stop_) break;
      record("interval");
    }
  });
}

void FlightRecorder::stop_interval_capture() {
  {
    const util::MutexLock lock(interval_mu_);
    interval_stop_ = true;
  }
  interval_cv_.notify_all();
  if (interval_thread_.joinable()) interval_thread_.join();
}

bool FlightRecorder::interval_capture_running() const {
  return interval_thread_.joinable();
}

void write_frame_json(std::ostream& os, const FlightFrame& frame) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", frame.monotonic_seconds);
  os << "{\"sequence\":" << frame.sequence << ",\"monotonic_seconds\":"
     << buf << ",\"label\":\"" << json_escaped(frame.label) << '"';
  if (frame.window_index != FlightFrame::kNoWindow) {
    os << ",\"window_index\":" << frame.window_index;
  }
  os << ",\"counter_deltas\":{";
  bool first = true;
  for (const auto& [name, delta] : frame.counter_deltas) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escaped(name) << "\":" << delta;
  }
  os << "},";
  append_snapshot_json(os, frame.snapshot);
  os << '}';
}

}  // namespace lfo::obs
