#include "obs/model_health.hpp"

#include <cmath>

#include "util/check.hpp"

namespace lfo::obs {

FeatureSummary summarize_rows(std::span<const float> matrix,
                              std::size_t num_features) {
  FeatureSummary summary;
  if (num_features == 0) return summary;
  LFO_CHECK_EQ(matrix.size() % num_features, 0u)
      << "summarize_rows: matrix size not a multiple of num_features";
  const std::size_t rows = matrix.size() / num_features;
  summary.rows = rows;
  summary.mean.assign(num_features, 0.0);
  summary.stddev.assign(num_features, 0.0);
  if (rows == 0) return summary;

  // Two-pass mean/variance: one extra sweep over data that is already
  // resident, numerically robust for the huge-magnitude gap features.
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = matrix.data() + r * num_features;
    for (std::size_t j = 0; j < num_features; ++j) {
      summary.mean[j] += static_cast<double>(row[j]);
    }
  }
  for (std::size_t j = 0; j < num_features; ++j) {
    summary.mean[j] /= static_cast<double>(rows);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = matrix.data() + r * num_features;
    for (std::size_t j = 0; j < num_features; ++j) {
      const double d = static_cast<double>(row[j]) - summary.mean[j];
      summary.stddev[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < num_features; ++j) {
    summary.stddev[j] = std::sqrt(summary.stddev[j] /
                                  static_cast<double>(rows));
  }
  return summary;
}

DriftScore feature_drift(const FeatureSummary& baseline,
                         const FeatureSummary& current) {
  DriftScore score;
  const std::size_t n = std::min(baseline.mean.size(), current.mean.size());
  if (n == 0 || baseline.rows == 0 || current.rows == 0) return score;
  double total = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double denom =
        baseline.stddev[j] + 1e-3 * std::abs(baseline.mean[j]) + 1e-12;
    const double shift = std::abs(current.mean[j] - baseline.mean[j]);
    const double spread = std::abs(current.stddev[j] - baseline.stddev[j]);
    const double s = (shift + spread) / denom;
    total += s;
    if (s > score.max_score) {
      score.max_score = s;
      score.worst_feature = j;
    }
  }
  score.mean_score = total / static_cast<double>(n);
  return score;
}

}  // namespace lfo::obs
