#ifndef LFO_OBS_EXPORTERS_HPP
#define LFO_OBS_EXPORTERS_HPP

#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace lfo::obs {

/// Serialize the whole registry in Prometheus text exposition format:
/// one `# TYPE` line plus value line(s) per metric, series names unique,
/// names sanitized to [a-zA-Z_:][a-zA-Z0-9_:]*. Counters get the
/// conventional `counter` type, histograms emit `_bucket{le="..."}`
/// (cumulative, ascending) plus `_sum`/`_count`. The exposition opens
/// with the `lfo_build_info` info-gauge (value 1; revision / compiler /
/// build_type as labels), so every scrape is attributable to a commit.
void write_prometheus_text(std::ostream& os);

/// Append one JSONL time-series line: a single JSON object holding every
/// counter, gauge and histogram (count/sum/p50/p90/p99), plus the
/// snapshot's monotonic timestamp and an optional caller label. One call
/// per window/phase yields a grep- and pandas-friendly time series.
void write_jsonl_snapshot(std::ostream& os, std::string_view label = {});

/// Prometheus metric-name sanitizer (exposed for tests): maps any
/// character outside [a-zA-Z0-9_:] to '_' and prefixes '_' when the
/// first character is invalid.
std::string prometheus_name(std::string_view name);

/// Minimal JSON string escaping (backslash, quote, control chars).
std::string json_escaped(std::string_view text);

/// Write the `"counters":{...},"gauges":{...},"histograms":{...}` body
/// of a snapshot (no surrounding braces, no trailing comma) — the
/// shared core of write_jsonl_snapshot, the telemetry server's /stats
/// response and FlightFrame serialization, so all three stay
/// field-compatible.
void append_snapshot_json(std::ostream& os, const MetricsSnapshot& snap);

/// Write `"build_info":{"revision":...,"compiler":...,"build_type":...}`
/// (no surrounding braces) from obs::build_info().
void append_build_info_json(std::ostream& os);

}  // namespace lfo::obs

#endif  // LFO_OBS_EXPORTERS_HPP
