#include "obs/telemetry_server.hpp"

#if LFO_METRICS_ENABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/build_info.hpp"
#include "obs/exporters.hpp"
#include "obs/trace_span.hpp"

namespace lfo::obs {

namespace {

/// Per-endpoint request counters. A table (rather than inline literals)
/// so tools/lfo_lint.py's metric-name rule covers the registrations and
/// the routing below cannot drift from the instrumented set.
struct EndpointMetric {
  const char* path;
  const char* metric;
};
constexpr EndpointMetric kEndpointRequestCounters[] = {
    {"/metrics", "lfo_telemetry_metrics_requests_total"},
    {"/stats", "lfo_telemetry_stats_requests_total"},
    {"/healthz", "lfo_telemetry_healthz_requests_total"},
    {"/vars", "lfo_telemetry_vars_requests_total"},
    {"/trace", "lfo_telemetry_trace_requests_total"},
};

void count_request(std::string_view path) {
  if (!metrics_enabled()) return;
  MetricsRegistry::instance().counter("lfo_telemetry_requests_total").inc();
  for (const auto& e : kEndpointRequestCounters) {
    if (path == e.path) {
      MetricsRegistry::instance().counter(e.metric).inc();
      return;
    }
  }
}

void count_bad_request() {
  if (!metrics_enabled()) return;
  MetricsRegistry::instance()
      .counter("lfo_telemetry_bad_requests_total")
      .inc();
}

struct timeval to_timeval(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
  return tv;
}

void set_io_timeouts(int fd, double seconds) {
  const struct timeval tv = to_timeval(seconds);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpResponse error_response(int status, std::string_view detail) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::string(detail);
  resp.body += '\n';
  return resp;
}

/// Value of `key` in an application/x-www-form-urlencoded query string
/// ("a=1&b=2"). No percent-decoding: every parameter this server accepts
/// is [A-Za-z0-9_] by construction. Returns (found, value).
std::pair<bool, std::string_view> query_param(std::string_view query,
                                              std::string_view key) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    const std::size_t eq = pair.find('=');
    const std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      return {true,
              eq == std::string_view::npos ? std::string_view{}
                                           : pair.substr(eq + 1)};
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return {false, {}};
}

/// Strict non-negative integer parse; returns (ok, value).
std::pair<bool, std::size_t> parse_size(std::string_view text) {
  if (text.empty() || text.size() > 9) return {false, 0};
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return {false, 0};
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return {true, value};
}

}  // namespace

TelemetryServer::TelemetryServer(TelemetryServerConfig config)
    : config_(std::move(config)) {}

TelemetryServer::~TelemetryServer() { stop(); }

bool TelemetryServer::start() {
  if (listen_fd_ >= 0) return true;
  last_error_.clear();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    last_error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    last_error_ = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) != 0) {
    last_error_ = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    last_error_ = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  const std::uint32_t handlers =
      config_.handler_threads > 0 ? config_.handler_threads : 1;
  handler_threads_.reserve(handlers);
  for (std::uint32_t i = 0; i < handlers; ++i) {
    handler_threads_.emplace_back([this] { handler_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void TelemetryServer::stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& handler : handler_threads_) {
    if (handler.joinable()) handler.join();
  }
  handler_threads_.clear();
  {
    // Connections accepted but never picked up: close without serving.
    util::MutexLock lock(queue_mu_);
    while (!pending_.empty()) {
      ::close(pending_.front());
      pending_.pop_front();
    }
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void TelemetryServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop flag
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    bool shed = false;
    {
      util::MutexLock lock(queue_mu_);
      if (pending_.size() >= config_.max_pending_connections) {
        shed = true;  // every handler busy and the backlog full
      } else {
        pending_.push_back(client);
      }
    }
    if (shed) {
      LFO_COUNTER_INC("lfo_telemetry_shed_connections_total");
      ::close(client);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void TelemetryServer::handler_loop() {
  while (true) {
    int client = -1;
    {
      util::MutexLock lock(queue_mu_);
      while (pending_.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        queue_cv_.wait_for_seconds(queue_mu_, 0.1);
      }
      client = pending_.front();
      pending_.pop_front();
    }
    serve_connection(client);
    ::close(client);
  }
}

void TelemetryServer::serve_connection(int fd) const {
  set_io_timeouts(fd, config_.io_timeout_seconds);
  std::string request;
  char buf[1024];
  bool complete = false;
  bool oversize = false;
  while (request.size() <= config_.max_request_bytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF, timeout or error: serve what we have
    request.append(buf, static_cast<std::size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos) {
      complete = true;
      break;
    }
    if (request.size() > config_.max_request_bytes) {
      oversize = true;
      break;
    }
  }
  HttpResponse resp;
  if (oversize) {
    count_bad_request();
    resp = error_response(431, "request head too large");
  } else if (!complete) {
    count_bad_request();
    resp = error_response(400, "incomplete request");
  } else {
    resp = handle_request(request);
  }
  std::ostringstream head;
  head << "HTTP/1.1 " << resp.status << ' ' << status_reason(resp.status)
       << "\r\nContent-Type: " << resp.content_type
       << "\r\nContent-Length: " << resp.body.size()
       << "\r\nConnection: close\r\n\r\n";
  if (send_all(fd, head.str())) send_all(fd, resp.body);
}

LFO_ENDPOINT_HANDLER
HttpResponse TelemetryServer::handle_request(
    std::string_view request) const {
  // Request line: METHOD SP TARGET SP VERSION CRLF. Anything that does
  // not parse maps to a 4xx — never an assertion — because the bytes
  // come from outside the process (lfo_lint `endpoint` rule).
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string_view::npos) {
    count_bad_request();
    return error_response(400, "malformed request line");
  }
  const std::string_view line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp2 == sp1 + 1) {
    count_bad_request();
    return error_response(400, "malformed request line");
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (version.substr(0, 5) != "HTTP/") {
    count_bad_request();
    return error_response(400, "malformed request line");
  }
  if (method != "GET") {
    count_bad_request();
    return error_response(405, "only GET is supported");
  }
  const std::size_t qmark = target.find('?');
  const std::string_view path = target.substr(0, qmark);
  const std::string_view query =
      qmark == std::string_view::npos ? std::string_view{}
                                      : target.substr(qmark + 1);
  if (path.empty() || path.front() != '/') {
    count_bad_request();
    return error_response(400, "target must be an absolute path");
  }
  count_request(path);

  HttpResponse resp;
  if (path == "/metrics") {
    std::ostringstream body;
    write_prometheus_text(body);
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = body.str();
    return resp;
  }
  if (path == "/stats") {
    std::size_t history = 0;
    const auto [has_history, history_text] = query_param(query, "history");
    if (has_history) {
      const auto [ok, n] = parse_size(history_text);
      if (!ok) {
        count_bad_request();
        return error_response(400, "history must be a small integer");
      }
      history = n;
    }
    std::ostringstream body;
    char ts[64];
    std::snprintf(ts, sizeof(ts), "%.17g",
                  static_cast<double>(detail::monotonic_ns()) * 1e-9);
    body << "{\"monotonic_seconds\":" << ts << ',';
    append_build_info_json(body);
    body << ',';
    append_snapshot_json(body, MetricsRegistry::instance().snapshot());
    body << ",\"history\":[";
    if (config_.flight_recorder != nullptr && history > 0) {
      const auto frames = config_.flight_recorder->history(history);
      for (std::size_t i = 0; i < frames.size(); ++i) {
        if (i > 0) body << ',';
        write_frame_json(body, frames[i]);
      }
    }
    body << "]}";
    resp.content_type = "application/json";
    resp.body = body.str();
    return resp;
  }
  if (path == "/healthz") {
    HealthStatus health;
    if (config_.health) health = config_.health();
    resp.status = health.serving ? 200 : 503;
    resp.content_type = "application/json";
    resp.body = std::string("{\"serving\":") +
                (health.serving ? "true" : "false") + ",\"detail\":\"" +
                json_escaped(health.detail) + "\"}";
    return resp;
  }
  if (path == "/vars") {
    const auto [has_name, name] = query_param(query, "name");
    if (!has_name || name.empty()) {
      count_bad_request();
      return error_response(400, "missing ?name=<metric>");
    }
    const auto snap = MetricsRegistry::instance().snapshot();
    for (const auto& c : snap.counters) {
      if (c.name == name) {
        resp.body = std::to_string(c.value) + "\n";
        return resp;
      }
    }
    for (const auto& g : snap.gauges) {
      if (g.name == name) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g\n", g.value);
        resp.body = buf;
        return resp;
      }
    }
    for (const auto& h : snap.histograms) {
      if (h.name == name) {
        std::ostringstream body;
        MetricsSnapshot one;
        one.histograms.push_back(h);
        append_snapshot_json(body, one);
        resp.content_type = "application/json";
        resp.body = "{" + body.str() + "}";
        return resp;
      }
    }
    return error_response(404, "no such metric");
  }
  if (path == "/trace") {
    std::ostringstream body;
    write_chrome_trace(body);
    resp.content_type = "application/json";
    resp.body = body.str();
    return resp;
  }
  return error_response(404, "unknown endpoint");
}

std::string fetch_local(std::uint16_t port, std::string_view target,
                        double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  set_io_timeouts(fd, timeout_seconds);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::string request = "GET ";
  request += target;
  request += " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request)) {
    ::close(fd);
    return {};
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace lfo::obs

#endif  // LFO_METRICS_ENABLED
