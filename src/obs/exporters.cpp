#include "obs/exporters.hpp"

#include <cctype>

#include "obs/build_info.hpp"
#include <cmath>
#include <cstdio>
#include <limits>

namespace lfo::obs {

namespace {

/// Format a double the way both Prometheus and JSON accept: shortest
/// round-trip representation, never localized.
std::string number_text(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// JSON has no NaN/Inf literals: empty-histogram quantiles (NaN per
/// LatencyHistogram::quantile) become null so the line stays parseable.
std::string json_number_or_null(double v) {
  return std::isfinite(v) ? number_text(v) : "null";
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string prometheus_label_value(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    const bool ok = alpha || c == '_' || c == ':' || (digit && i > 0);
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  return out;
}

std::string json_escaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void write_prometheus_text(std::ostream& os) {
  const auto snap = MetricsRegistry::instance().snapshot();
  const auto& info = build_info();
  os << "# TYPE lfo_build_info gauge\n"
     << "lfo_build_info{revision=\"" << prometheus_label_value(info.revision)
     << "\",compiler=\"" << prometheus_label_value(info.compiler)
     << "\",build_type=\"" << prometheus_label_value(info.build_type)
     << "\"} 1\n";
  for (const auto& c : snap.counters) {
    const auto name = prometheus_name(c.name);
    os << "# TYPE " << name << " counter\n";
    os << name << ' ' << c.value << '\n';
  }
  for (const auto& g : snap.gauges) {
    const auto name = prometheus_name(g.name);
    os << "# TYPE " << name << " gauge\n";
    os << name << ' ' << number_text(g.value) << '\n';
  }
  for (const auto& h : snap.histograms) {
    const auto name = prometheus_name(h.name);
    os << "# TYPE " << name << " histogram\n";
    for (const auto& [upper, cum] : h.cumulative_buckets) {
      os << name << "_bucket{le=\"" << number_text(upper) << "\"} " << cum
         << '\n';
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    os << name << "_sum " << number_text(h.sum_seconds) << '\n';
    os << name << "_count " << h.count << '\n';
  }
}

void append_snapshot_json(std::ostream& os, const MetricsSnapshot& snap) {
  os << "\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escaped(c.name) << "\":" << c.value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& g : snap.gauges) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escaped(g.name) << "\":" << number_text(g.value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escaped(h.name) << "\":{\"count\":" << h.count
       << ",\"sum_seconds\":" << number_text(h.sum_seconds)
       << ",\"p50\":" << json_number_or_null(h.p50)
       << ",\"p90\":" << json_number_or_null(h.p90)
       << ",\"p99\":" << json_number_or_null(h.p99) << '}';
  }
  os << '}';
}

void append_build_info_json(std::ostream& os) {
  const auto& info = build_info();
  os << "\"build_info\":{\"revision\":\"" << json_escaped(info.revision)
     << "\",\"compiler\":\"" << json_escaped(info.compiler)
     << "\",\"build_type\":\"" << json_escaped(info.build_type) << "\"}";
}

void write_jsonl_snapshot(std::ostream& os, std::string_view label) {
  const auto snap = MetricsRegistry::instance().snapshot();
  os << "{\"monotonic_seconds\":"
     << number_text(static_cast<double>(detail::monotonic_ns()) * 1e-9);
  if (!label.empty()) {
    os << ",\"label\":\"" << json_escaped(label) << '"';
  }
  os << ',';
  append_build_info_json(os);
  os << ',';
  append_snapshot_json(os, snap);
  os << "}\n";
}

}  // namespace lfo::obs
