#ifndef LFO_OBS_MODEL_HEALTH_HPP
#define LFO_OBS_MODEL_HEALTH_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lfo::obs {

/// Per-feature mean/stddev of one training window's feature matrix —
/// the fingerprint a later window is compared against to detect drift.
struct FeatureSummary {
  std::vector<double> mean;
  std::vector<double> stddev;
  std::size_t rows = 0;
};

/// Summarize a row-major feature matrix with `num_features` columns.
FeatureSummary summarize_rows(std::span<const float> matrix,
                              std::size_t num_features);

/// How far `current` has moved from `baseline`. Per feature j the score
/// is the mean shift in units of the baseline's spread plus the spread
/// change itself:
///   score_j = (|mu_c - mu_b| + |sigma_c - sigma_b|) / denom_b,
///   denom_b = sigma_b + 1e-3 * |mu_b| + 1e-12
/// (the relative term keeps near-constant features from exploding the
/// score on tiny absolute wobble). `mean_score` averages over features;
/// `max_score`/`worst_feature` localize the worst offender.
struct DriftScore {
  double mean_score = 0.0;
  double max_score = 0.0;
  std::size_t worst_feature = 0;
};

DriftScore feature_drift(const FeatureSummary& baseline,
                         const FeatureSummary& current);

/// Counts consecutive windows whose drift score sat at or above a
/// threshold ("sustained drift", as opposed to the one-shot
/// drift_warning on WindowReport). The rollout guard uses it as the
/// fallback trigger: a single noisy window must not abandon a model,
/// but `trigger_windows` in a row mean the serving model's training
/// distribution is gone. threshold <= 0 disables it (never triggers).
class DriftTracker {
 public:
  DriftTracker(double threshold, std::uint32_t trigger_windows)
      : threshold_(threshold), trigger_windows_(trigger_windows) {}

  /// Feed one window's mean drift score. Negative scores mean "drift
  /// unknown" (no serving model / failed training) and leave the streak
  /// untouched: a gap in the signal is not evidence the drift ended.
  void observe(double drift) {
    if (threshold_ <= 0.0 || drift < 0.0) return;
    streak_ = drift >= threshold_ ? streak_ + 1 : 0;
  }
  void reset() { streak_ = 0; }

  std::uint32_t streak() const { return streak_; }
  bool triggered() const {
    return threshold_ > 0.0 && trigger_windows_ > 0 &&
           streak_ >= trigger_windows_;
  }

 private:
  double threshold_;
  std::uint32_t trigger_windows_;
  std::uint32_t streak_ = 0;
};

/// Online model-health readout for one window of the LFO pipeline,
/// surfaced on core::WindowReport. Fields default to -1 ("undefined")
/// until the corresponding signal exists (e.g. no serving model yet).
/// All fields are deterministic functions of the trace and the decision
/// schedule — they never feed back into caching decisions.
struct ModelHealth {
  /// Agreement of the serving model's cutoff decisions with this
  /// window's later-computed OPT labels (the paper's own quality metric,
  /// §3/Fig 5). -1 when no model was serving.
  double decision_accuracy = -1.0;
  double false_positive_share = -1.0;
  double false_negative_share = -1.0;
  /// Feature-distribution shift of this window vs the window the serving
  /// model was trained on. -1 when no serving model / summary exists.
  double feature_drift = -1.0;
  double max_feature_drift = -1.0;
  std::size_t drift_worst_feature = 0;
  /// Fraction of this window's misses the predictor admitted
  /// (1 - bypass share). -1 when the window saw no miss.
  double admission_rate = -1.0;
  double admission_rate_delta = 0.0;  ///< vs previous window (0 for first)
  double bhr_delta = 0.0;             ///< vs previous window (0 for first)
  /// True when feature_drift crossed WindowedConfig::drift_warn_threshold
  /// (also logged at warn level): drift / flash-crowd degradation is
  /// observable instead of silent.
  bool drift_warning = false;
};

}  // namespace lfo::obs

#endif  // LFO_OBS_MODEL_HEALTH_HPP
