#ifndef LFO_OBS_TELEMETRY_SERVER_HPP
#define LFO_OBS_TELEMETRY_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

/// Marker consumed by tools/lfo_lint.py: the tagged function DEFINITION
/// handles externally supplied HTTP input. lfo_lint rejects LFO_CHECK /
/// LFO_DCHECK inside the body — malformed input must map to a 4xx
/// response, never to a process abort — unless the line carries an
/// explicit `// lfo-lint: allow(endpoint): why`. Expands to nothing.
#define LFO_ENDPOINT_HANDLER

namespace lfo::obs {

/// Health verdict served on /healthz. `serving` decides the status code
/// (200 vs 503); `detail` is echoed in the JSON body for operators.
struct HealthStatus {
  bool serving = true;
  std::string detail = "ok";
};

/// One parsed-and-answered HTTP exchange (also the unit the in-process
/// tests drive directly, without sockets).
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

struct TelemetryServerConfig {
  /// TCP port to bind on 127.0.0.1. 0 picks an ephemeral port; read the
  /// actual one back via TelemetryServer::port().
  std::uint16_t port = 0;
  /// Flight recorder backing `/stats?history=N` and `/trace` context.
  /// May be null: history queries then return an empty array.
  FlightRecorder* flight_recorder = nullptr;
  /// Callback behind /healthz. Null means "always serving".
  std::function<HealthStatus()> health = nullptr;
  /// Hard cap on a request head (start line + headers). Longer requests
  /// are answered 431 and the connection dropped.
  std::size_t max_request_bytes = 8192;
  /// Per-connection socket read/write timeout.
  double io_timeout_seconds = 2.0;
  /// Connection handler threads. Accepted sockets are handed to this
  /// pool so one stalled scraper cannot block /healthz for everyone
  /// (head-of-line blocking on the accept thread).
  std::uint32_t handler_threads = 2;
  /// Accepted-but-unserved backlog cap. Connections beyond it are
  /// closed immediately (counted in
  /// lfo_telemetry_shed_connections_total) rather than queued behind
  /// stalled peers.
  std::size_t max_pending_connections = 16;
};

#if LFO_METRICS_ENABLED

/// Dependency-free HTTP/1.1 telemetry responder over plain POSIX
/// sockets: one accept thread feeding a small bounded handler pool
/// (`handler_threads`), `Connection: close` on every response. A peer
/// that connects and then stalls occupies one handler until the io
/// timeout; it cannot delay other scrapes — /healthz in particular
/// stays prompt (tests/test_telemetry_server.cpp locks this down with
/// a deliberately slow client). Endpoints:
///
///   GET /metrics            Prometheus text exposition (exporters.cpp)
///   GET /stats[?history=N]  JSON snapshot + last N flight frames
///   GET /healthz            200/503 from the health callback
///   GET /vars?name=<m>      single metric as a bare value
///   GET /trace              chrome://tracing JSON dump
///
/// Every handler is a pure registry/recorder read — serving a scrape can
/// never change a caching decision (tests/test_telemetry_server.cpp
/// asserts same_decisions with a live scraper). Binds 127.0.0.1 only:
/// this is an operator loopback port, not an internet-facing server.
class TelemetryServer {
 public:
  explicit TelemetryServer(TelemetryServerConfig config);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Bind + listen + start the accept thread. Returns false (with the
  /// reason in last_error()) if the port is taken or sockets fail.
  bool start();
  /// Stop accepting, join the thread, close the listener. Idempotent.
  void stop();
  bool running() const { return listen_fd_ >= 0; }

  /// Port actually bound (resolves port 0), 0 before start().
  std::uint16_t port() const { return port_; }
  const std::string& last_error() const { return last_error_; }

  /// Parse one raw request head and produce the response — the whole
  /// HTTP brain, exposed so tests exercise routing and malformed-input
  /// handling without a socket in sight.
  HttpResponse handle_request_for_test(std::string_view request) const {
    return handle_request(request);
  }

 private:
  HttpResponse handle_request(std::string_view request) const;
  void accept_loop();
  void handler_loop();
  void serve_connection(int fd) const;

  TelemetryServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string last_error_;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;

  /// Accepted sockets awaiting a handler. The accept thread only ever
  /// enqueues (or sheds over the cap), so a peer that connects and then
  /// stalls ties up at most one handler, never the accept path.
  util::Mutex queue_mu_;
  util::CondVar queue_cv_;
  std::deque<int> pending_ LFO_GUARDED_BY(queue_mu_);
};

/// Minimal loopback HTTP GET for tests and the bench scraper thread:
/// connects to 127.0.0.1:port, sends `GET <target>`, returns the raw
/// response (status line + headers + body) or an empty string on any
/// socket failure.
std::string fetch_local(std::uint16_t port, std::string_view target,
                        double timeout_seconds = 2.0);

#else  // !LFO_METRICS_ENABLED — no server, no socket code is compiled.

class TelemetryServer {
 public:
  explicit TelemetryServer(TelemetryServerConfig config)
      : config_(std::move(config)) {}
  bool start() {
    last_error_ = "telemetry server compiled out (LFO_METRICS=OFF)";
    return false;
  }
  void stop() {}
  bool running() const { return false; }
  std::uint16_t port() const { return 0; }
  const std::string& last_error() const { return last_error_; }
  HttpResponse handle_request_for_test(std::string_view) const {
    return HttpResponse{503, "text/plain; charset=utf-8",
                        "telemetry compiled out\n"};
  }

 private:
  TelemetryServerConfig config_;
  std::string last_error_;
};

inline std::string fetch_local(std::uint16_t, std::string_view,
                               double = 2.0) {
  return {};
}

#endif  // LFO_METRICS_ENABLED

}  // namespace lfo::obs

#endif  // LFO_OBS_TELEMETRY_SERVER_HPP
