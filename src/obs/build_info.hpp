#ifndef LFO_OBS_BUILD_INFO_HPP
#define LFO_OBS_BUILD_INFO_HPP

#include <string>

namespace lfo::obs {

/// Compile-time attribution of the running binary, resolved when the
/// obs library was configured (src/obs/CMakeLists.txt bakes in the git
/// revision, compiler id+version and CMAKE_BUILD_TYPE). Exported as the
/// conventional Prometheus `lfo_build_info` info-gauge (constant value
/// 1, the payload lives in the labels) and as the `build_info` object
/// of every JSONL snapshot / `/stats` response, so every scrape and
/// every BENCH artifact is attributable to a commit.
struct BuildInfo {
  std::string revision;    ///< short git hash at configure time
  std::string compiler;    ///< "<id> <version>", e.g. "GNU 13.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo"
};

/// The process's build attribution (values are stable for the process
/// lifetime). Fields fall back to "unknown" outside a git checkout.
const BuildInfo& build_info();

}  // namespace lfo::obs

#endif  // LFO_OBS_BUILD_INFO_HPP
