#include "obs/build_info.hpp"

// The definitions are injected per-target by src/obs/CMakeLists.txt;
// the fallbacks keep the file compiling standalone (unit tests, IDEs).
#ifndef LFO_GIT_REVISION
#define LFO_GIT_REVISION "unknown"
#endif
#ifndef LFO_COMPILER_INFO
#define LFO_COMPILER_INFO "unknown"
#endif
#ifndef LFO_BUILD_TYPE
#define LFO_BUILD_TYPE "unknown"
#endif

namespace lfo::obs {

const BuildInfo& build_info() {
  static const BuildInfo info{LFO_GIT_REVISION, LFO_COMPILER_INFO,
                              LFO_BUILD_TYPE};
  return info;
}

}  // namespace lfo::obs
