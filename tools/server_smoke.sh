#!/usr/bin/env bash
# End-to-end smoke of the lfo::server cache service: start bench_server
# in --linger mode (sharded cache + TCP front end + mounted telemetry on
# ephemeral ports), drive a short trace through the built-in closed-loop
# client, scrape the telemetry endpoints from the outside, push one raw
# batch over the wire protocol, and assert a clean natural shutdown.
#
#   tools/server_smoke.sh [path-to-bench_server]
#
# Default binary: ./build/bench/bench_server (built by the standard
# `cmake --build build` invocation). Checks:
#   replay    — the built-in client drives the whole trace, hits > 0
#   /metrics  — 200 and the lfo_server_* serving metrics present
#   /healthz  — 200 (bootstrap serves as healthy)
#   protocol  — a raw one-request frame gets a one-decision reply
#   shutdown  — the process exits 0 by itself after the linger window
# Exits nonzero on the first failed check.

set -euo pipefail

cd "$(dirname "$0")/.."

BIN="${1:-./build/bench/bench_server}"
if [[ ! -x "$BIN" ]]; then
  echo "server_smoke: binary not found: $BIN (build the benches first)" >&2
  exit 2
fi

LOG="$(mktemp)"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

# Small workload, ephemeral ports, linger long enough for the checks.
"$BIN" --requests=20000 --linger=10 > "$LOG" 2>&1 &
SRV_PID=$!

# bench_server prints "server: listening on 127.0.0.1:<port>" and
# "telemetry: listening on 127.0.0.1:<port>" once bound (format is
# load-bearing; this script seds the ports out).
PORT=""
TPORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^server: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
          "$LOG" | head -n1)"
  TPORT="$(sed -n 's/^telemetry: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
           "$LOG" | head -n1)"
  [[ -n "$PORT" && -n "$TPORT" ]] && break
  if ! kill -0 "$SRV_PID" 2>/dev/null; then
    echo "server_smoke: server exited before binding; log:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.2
done
if [[ -z "$PORT" || -z "$TPORT" ]]; then
  echo "server_smoke: no listening lines after 20s; log:" >&2
  cat "$LOG" >&2
  exit 1
fi
echo "server_smoke: cache on port $PORT, telemetry on port $TPORT"

fail() { echo "server_smoke: FAIL: $*" >&2; cat "$LOG" >&2; exit 1; }

# Wait for the built-in client replay to finish.
for _ in $(seq 1 100); do
  grep -q '^served ' "$LOG" && break
  sleep 0.2
done
grep -q '^served 20000 requests' "$LOG" \
  || fail "client replay did not cover the trace"
HITS="$(sed -n 's/^served [0-9]* requests, \([0-9]*\) hits$/\1/p' "$LOG")"
[[ -n "$HITS" && "$HITS" -gt 0 ]] || fail "replay produced no hits"
echo "server_smoke: replay ok ($HITS hits)"

BASE="http://127.0.0.1:$TPORT"

METRICS="$(curl -fsS --max-time 5 "$BASE/metrics")" \
  || fail "/metrics did not return 200"
grep -q '^lfo_server_requests_total 20000' <<<"$METRICS" \
  || fail "/metrics lfo_server_requests_total does not match the replay"
grep -q '^lfo_server_workers ' <<<"$METRICS" \
  || fail "/metrics missing lfo_server_workers"
grep -q '^lfo_server_shards ' <<<"$METRICS" \
  || fail "/metrics missing lfo_server_shards"
echo "server_smoke: /metrics ok"

HEALTH_CODE="$(curl -s --max-time 5 -o /tmp/server_smoke_health.json \
               -w '%{http_code}' "$BASE/healthz")"
[[ "$HEALTH_CODE" == "200" ]] \
  || fail "/healthz returned $HEALTH_CODE: $(cat /tmp/server_smoke_health.json)"
echo "server_smoke: /healthz ok"

# One raw frame over the binary protocol: u32 count=1 + a 32-byte
# request must come back as u32 count=1 + one decision byte.
python3 - "$PORT" <<'PYEOF' || fail "wire protocol round-trip failed"
import socket, struct, sys
port = int(sys.argv[1])
frame = struct.pack("<I", 1) + struct.pack("<QQQd", 42, 1000, 60, 1000.0)
with socket.create_connection(("127.0.0.1", port), timeout=5) as s:
    s.sendall(frame)
    reply = b""
    while len(reply) < 5:
        chunk = s.recv(5 - len(reply))
        if not chunk:
            break
        reply += chunk
assert len(reply) == 5, reply
count, decision = struct.unpack("<IB", reply)
assert count == 1, count
assert decision in (0, 1, 2), decision
PYEOF
echo "server_smoke: wire protocol ok"

# The server must shut down cleanly on its own when the linger window
# closes (clean shutdown is part of the acceptance contract).
if ! kill -0 "$SRV_PID" 2>/dev/null; then
  : # already exited — fine, as long as the exit was clean
fi
RC=0
wait "$SRV_PID" || RC=$?
trap 'rm -f "$LOG"' EXIT
[[ "$RC" -eq 0 ]] || fail "server exited $RC"
grep -q '^server: clean shutdown$' "$LOG" || fail "no clean-shutdown line"
echo "server_smoke: all checks passed"
