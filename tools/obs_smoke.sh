#!/usr/bin/env bash
# End-to-end smoke of the live telemetry service: launch the example
# simulation with the in-process HTTP server on an ephemeral port, then
# drive every endpoint from the outside like a real scraper would.
#
#   tools/obs_smoke.sh [path-to-cdn_server_simulation]
#
# Default binary: ./build/examples/cdn_server_simulation (built by the
# standard `cmake --build build` invocation). Checks:
#   /metrics  — 200, valid-looking exposition, lfo_build_info present
#   /stats    — 200, parses as JSON (python3 json module)
#   /healthz  — 200 and "serving":true after a healthy run
#   /vars     — 200 for a known metric, 404 for an unknown one
#   malformed — a raw garbage request line gets 400, not a hang/abort
#   unknown   — GET /nope gets 404
# Exits nonzero on the first failed check.

set -euo pipefail

cd "$(dirname "$0")/.."

BIN="${1:-./build/examples/cdn_server_simulation}"
if [[ ! -x "$BIN" ]]; then
  echo "obs_smoke: binary not found: $BIN (build the examples first)" >&2
  exit 2
fi

LOG="$(mktemp)"
trap 'kill "$SIM_PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

# Small workload, ephemeral port, linger long enough for the checks.
"$BIN" --requests=20000 --obs-port=0 --obs-linger=30 > "$LOG" 2>&1 &
SIM_PID=$!

# The example prints "telemetry: listening on 127.0.0.1:<port>" once the
# socket is bound (format is load-bearing; test_telemetry_server and this
# script both rely on it).
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^telemetry: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
          "$LOG" | head -n1)"
  [[ -n "$PORT" ]] && break
  if ! kill -0 "$SIM_PID" 2>/dev/null; then
    echo "obs_smoke: simulation exited before binding; log:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.2
done
if [[ -z "$PORT" ]]; then
  echo "obs_smoke: no listening line after 20s; log:" >&2
  cat "$LOG" >&2
  exit 1
fi
echo "obs_smoke: telemetry on port $PORT"

# Wait for the run itself to finish (the results banner) so /healthz
# reflects a completed healthy run, not the bootstrap window.
for _ in $(seq 1 100); do
  grep -q 'telemetry: lingering' "$LOG" && break
  sleep 0.2
done

fail() { echo "obs_smoke: FAIL: $*" >&2; exit 1; }

BASE="http://127.0.0.1:$PORT"

METRICS="$(curl -fsS --max-time 5 "$BASE/metrics")" \
  || fail "/metrics did not return 200"
grep -q '^lfo_build_info{revision=' <<<"$METRICS" \
  || fail "/metrics missing lfo_build_info"
grep -q '^# TYPE lfo_' <<<"$METRICS" || fail "/metrics missing TYPE lines"
echo "obs_smoke: /metrics ok ($(wc -l <<<"$METRICS") lines)"

curl -fsS --max-time 5 "$BASE/stats?history=8" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert "build_info" in doc and "counters" in doc, sorted(doc)
assert isinstance(doc.get("history"), list), "history missing"
' || fail "/stats?history=8 invalid"
echo "obs_smoke: /stats ok"

HEALTH_CODE="$(curl -s --max-time 5 -o /tmp/obs_smoke_health.json \
               -w '%{http_code}' "$BASE/healthz")"
[[ "$HEALTH_CODE" == "200" ]] \
  || fail "/healthz returned $HEALTH_CODE: $(cat /tmp/obs_smoke_health.json)"
grep -q '"serving":true' /tmp/obs_smoke_health.json \
  || fail "/healthz not serving: $(cat /tmp/obs_smoke_health.json)"
echo "obs_smoke: /healthz ok"

curl -fsS --max-time 5 "$BASE/vars?name=lfo_rollout_state" >/dev/null \
  || fail "/vars known metric not 200"
UNKNOWN_CODE="$(curl -s --max-time 5 -o /dev/null -w '%{http_code}' \
                "$BASE/vars?name=lfo_no_such_metric_total")"
[[ "$UNKNOWN_CODE" == "404" ]] || fail "/vars unknown got $UNKNOWN_CODE"
echo "obs_smoke: /vars ok"

NOPE_CODE="$(curl -s --max-time 5 -o /dev/null -w '%{http_code}' \
             "$BASE/nope")"
[[ "$NOPE_CODE" == "404" ]] || fail "unknown path got $NOPE_CODE"

# Malformed request line over a raw socket: the server must answer 400
# and close, never abort (the endpoint lint rule's runtime counterpart).
python3 - "$PORT" <<'PYEOF'
import socket, sys
port = int(sys.argv[1])
with socket.create_connection(("127.0.0.1", port), timeout=5) as s:
    s.sendall(b"totally bogus\r\n\r\n")
    data = b""
    while True:
        chunk = s.recv(4096)
        if not chunk:
            break
        data += chunk
status = data.split(b"\r\n", 1)[0]
assert status == b"HTTP/1.1 400 Bad Request", status
PYEOF
[[ $? -eq 0 ]] || fail "malformed request not answered with 400"
echo "obs_smoke: malformed-request handling ok"

# The process must still be alive and healthy after the abuse.
kill -0 "$SIM_PID" || fail "simulation died during the smoke"
curl -fsS --max-time 5 "$BASE/healthz" >/dev/null \
  || fail "/healthz dead after malformed request"

kill "$SIM_PID" 2>/dev/null || true
wait "$SIM_PID" 2>/dev/null || true
echo "obs_smoke: all checks passed"
