#!/usr/bin/env bash
# Static-analysis and dynamic-correctness gate for libLFO.
#
#   tools/run_static_checks.sh [--skip-asan] [--skip-tsan] [--skip-tidy]
#                              [--skip-obs] [--skip-faults] [--skip-perf]
#                              [--skip-simd] [--skip-threadsafety]
#                              [--skip-lint] [--skip-server]
#
# Runs, in order:
#   1. asan-ubsan preset: configure, build the test suite, run ctest under
#      AddressSanitizer + UndefinedBehaviorSanitizer (LFO_DCHECKs on).
#   2. tsan preset: configure, build, run the "stress" ctest label
#      (ThreadPool, parallel sweep, async retraining pipeline, concurrent
#      const feature extraction) under ThreadSanitizer.
#   3. obs gate: build with -DLFO_METRICS=ON and =OFF, run tier1 under
#      both, and diff the golden-trace decision counts across the two
#      builds — instrumentation must be provably decision-neutral even
#      when compiled out. Then tools/obs_smoke.sh drives the live
#      telemetry endpoints (/metrics, /stats, /healthz, /vars, malformed
#      requests) against the example binary from outside the process.
#   4. fault gate: Release build, then `ctest -L faults` — the rollout
#      guard under injected training failures on the golden flash-crowd
#      generator (fallback + recovery, BHR >= heuristic-only baseline,
#      sync-vs-async determinism with faults, and guarded-vs-unguarded
#      decision identity when no fault fires).
#   5. perf smoke: Release build, then `ctest -L perfsmoke` — the
#      flat-forest-vs-tree-walk golden decision diff and the
#      instrumented-operator-new zero-allocation hot-path test, whose
#      strict assertions only arm in optimized unsanitized builds.
#   6. simd-off gate: the same Release build, `ctest -L tier1` with
#      LFO_SIMD=scalar — the env override pins gbdt's portable scalar
#      kernels, so every bitwise-identity and golden-decision test
#      re-proves the quantized engine's scores cannot depend on which
#      ISA the dispatcher picked (the fallback CPUs without AVX2/NEON
#      actually run).
#   7. clang-tidy over src/ (including src/obs) via the asan build's
#      compile_commands.json with the repo .clang-tidy config (skipped
#      with a warning when no clang-tidy binary is installed, e.g.
#      gcc-only containers).
#   8. thread-safety: clang's -Werror=thread-safety over the annotated
#      lock discipline (util::Mutex / LFO_GUARDED_BY) via the
#      thread-safety preset, after first proving the analysis is armed
#      on a known-good / known-bad fixture pair (skipped with a warning
#      when clang++ is not installed).
#   9. server smoke: Release build of bench_server, then
#      tools/server_smoke.sh — boots the sharded lfo::server front end in
#      --linger mode, replays a trace through the closed-loop client,
#      scrapes the mounted /metrics + /healthz from outside, pushes one
#      raw wire-protocol frame, and requires a clean natural shutdown.
#  10. lfo_lint: tools/lfo_lint.py invariant rules (hot-path allocation
#      and locking, nondeterminism in decision code, side effects in
#      LFO_CHECK arguments, obs metric-name conventions, no aborting
#      checks in LFO_ENDPOINT_HANDLER bodies) over src/, plus its
#      fixture self-test.
#
# Exits non-zero on the first failing stage.
#
# This is the slow gate; the fast development gate is the tier1 label on
# a plain build:  ctest --test-dir build -L tier1

set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_ASAN=0
SKIP_TSAN=0
SKIP_TIDY=0
SKIP_OBS=0
SKIP_FAULTS=0
SKIP_PERF=0
SKIP_SIMD=0
SKIP_THREADSAFETY=0
SKIP_LINT=0
SKIP_SERVER=0
for arg in "$@"; do
  case "$arg" in
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-tidy) SKIP_TIDY=1 ;;
    --skip-obs) SKIP_OBS=1 ;;
    --skip-faults) SKIP_FAULTS=1 ;;
    --skip-perf) SKIP_PERF=1 ;;
    --skip-simd) SKIP_SIMD=1 ;;
    --skip-threadsafety) SKIP_THREADSAFETY=1 ;;
    --skip-lint) SKIP_LINT=1 ;;
    --skip-server) SKIP_SERVER=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

banner() { printf '\n=== %s ===\n' "$*"; }

if [[ "$SKIP_ASAN" -eq 0 ]]; then
  banner "asan-ubsan: configure + build tests"
  cmake --preset asan-ubsan
  cmake --build build-asan --target lfo_tests -j "$JOBS"
  banner "asan-ubsan: ctest"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

if [[ "$SKIP_TSAN" -eq 0 ]]; then
  banner "tsan: configure + build stress tests"
  cmake --preset tsan
  cmake --build build-tsan --target test_stress_threads \
        --target test_async_pipeline -j "$JOBS"
  banner "tsan: ctest -L stress"
  ctest --test-dir build-tsan -L stress --output-on-failure -j "$JOBS"
fi

if [[ "$SKIP_OBS" -eq 0 ]]; then
  for mode in on off; do
    flag=OFF
    [[ "$mode" == on ]] && flag=ON
    banner "obs: LFO_METRICS=$flag configure + build + tier1"
    cmake -S . -B "build-obs-$mode" -DCMAKE_BUILD_TYPE=Release \
          -DLFO_METRICS="$flag"
    cmake --build "build-obs-$mode" --target lfo_tests -j "$JOBS"
    ctest --test-dir "build-obs-$mode" -L tier1 --output-on-failure \
          -j "$JOBS"
  done
  banner "obs: golden decisions must match across LFO_METRICS=ON/OFF"
  GOLDEN_TMP="$(mktemp -d)"
  trap 'rm -rf "$GOLDEN_TMP"' EXIT
  for mode in on off; do
    LFO_UPDATE_GOLDEN=1 "./build-obs-$mode/tests/test_golden_traces" \
        --gtest_filter='*PrintCurrentValues*' \
        | sed -n '/constexpr Scenario kGolden/,/^};/p' \
        > "$GOLDEN_TMP/golden-$mode.txt"
    [[ -s "$GOLDEN_TMP/golden-$mode.txt" ]] \
        || { echo "obs gate: empty golden dump for $mode" >&2; exit 1; }
  done
  diff -u "$GOLDEN_TMP/golden-on.txt" "$GOLDEN_TMP/golden-off.txt" \
      || { echo "obs gate: instrumentation changed golden decisions" >&2
           exit 1; }
  echo "obs gate: golden decision counts identical across ON/OFF"

  banner "obs: live telemetry endpoint smoke (tools/obs_smoke.sh)"
  cmake --build build-obs-on --target cdn_server_simulation -j "$JOBS"
  tools/obs_smoke.sh ./build-obs-on/examples/cdn_server_simulation
fi

if [[ "$SKIP_FAULTS" -eq 0 ]]; then
  banner "fault gate: Release build + ctest -L faults"
  cmake -S . -B build-faults -DCMAKE_BUILD_TYPE=Release
  cmake --build build-faults --target test_rollout -j "$JOBS"
  # Injected training failures (WindowedConfig::train_fault) must drive
  # the rollout guard through fallback and recovery deterministically,
  # keep BHR at or above the heuristic-only baseline, and — with no
  # faults — leave decisions bitwise-identical to an unguarded run.
  ctest --test-dir build-faults -L faults --output-on-failure -j "$JOBS"
fi

if [[ "$SKIP_PERF" -eq 0 ]]; then
  banner "perf smoke: Release build + ctest -L perfsmoke"
  cmake -S . -B build-perf -DCMAKE_BUILD_TYPE=Release
  cmake --build build-perf --target test_flat_forest \
        --target test_hotpath_alloc -j "$JOBS"
  # Strict gates: the flat engine must be decision-identical to the tree
  # walk and the warm serving path must perform zero heap allocations
  # (NDEBUG + no sanitizer arms the EXPECT_EQ(delta, 0) assertions).
  ctest --test-dir build-perf -L perfsmoke --output-on-failure -j "$JOBS"
fi

if [[ "$SKIP_SIMD" -eq 0 ]]; then
  banner "simd-off: tier1 with LFO_SIMD=scalar (forced portable kernels)"
  cmake -S . -B build-perf -DCMAKE_BUILD_TYPE=Release
  cmake --build build-perf --target lfo_tests -j "$JOBS"
  # Same binaries, scalar dispatch pinned by the environment: the bitwise
  # and golden-decision tier1 tests now certify the no-SIMD fallback.
  LFO_SIMD=scalar ctest --test-dir build-perf -L tier1 \
      --output-on-failure -j "$JOBS"
fi

if [[ "$SKIP_TIDY" -eq 0 ]]; then
  banner "clang-tidy over src/"
  TIDY="$(command -v clang-tidy || true)"
  if [[ -z "$TIDY" ]]; then
    echo "WARNING: clang-tidy not installed; skipping the lint gate." >&2
    echo "         (install clang-tidy and re-run to enforce .clang-tidy)" >&2
  else
    # Reuse any existing compile database; prefer the asan tree since this
    # script just built it.
    DB_DIR=""
    for d in build-asan build; do
      [[ -f "$d/compile_commands.json" ]] && DB_DIR="$d" && break
    done
    if [[ -z "$DB_DIR" ]]; then
      cmake --preset asan-ubsan
      DB_DIR=build-asan
    fi
    mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p "$DB_DIR" -quiet "${SOURCES[@]}"
    else
      "$TIDY" -p "$DB_DIR" --quiet "${SOURCES[@]}"
    fi
  fi
fi

if [[ "$SKIP_THREADSAFETY" -eq 0 ]]; then
  banner "thread-safety: clang -Werror=thread-safety"
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "WARNING: clang++ not installed; skipping the thread-safety gate." >&2
    echo "         (install clang and re-run to enforce the lock annotations)" >&2
  else
    # Arm check: the analysis must accept the known-good fixture and
    # reject the known-bad one, otherwise a misconfigured flag set would
    # "pass" the whole tree without analyzing anything.
    TSA_FLAGS=(-std=c++20 -fsyntax-only -Wthread-safety
               -Werror=thread-safety -Isrc)
    clang++ "${TSA_FLAGS[@]}" tests/threadsafety_fixture/good_guard.cpp         || { echo "thread-safety gate: good fixture rejected" >&2; exit 1; }
    if clang++ "${TSA_FLAGS[@]}" tests/threadsafety_fixture/bad_guard.cpp         2>/dev/null; then
      echo "thread-safety gate: broken-guard fixture passed — analysis"            "is not armed" >&2
      exit 1
    fi
    echo "thread-safety gate: fixture pair behaves (good passes, bad fails)"
    banner "thread-safety: full build under the thread-safety preset"
    cmake --preset thread-safety
    cmake --build build-threadsafety -j "$JOBS"
  fi
fi

if [[ "$SKIP_SERVER" -eq 0 ]]; then
  banner "server smoke: Release bench_server + tools/server_smoke.sh"
  cmake -S . -B build-perf -DCMAKE_BUILD_TYPE=Release
  cmake --build build-perf --target bench_server -j "$JOBS"
  tools/server_smoke.sh ./build-perf/bench/bench_server
fi

if [[ "$SKIP_LINT" -eq 0 ]]; then
  banner "lfo_lint: fixture self-test + src/ invariants"
  PY="$(command -v python3 || true)"
  if [[ -z "$PY" ]]; then
    echo "WARNING: python3 not installed; skipping the lfo_lint gate." >&2
  else
    "$PY" tests/test_lfo_lint.py
    "$PY" tools/lfo_lint.py --root . src
  fi
fi

banner "all requested static checks passed"
