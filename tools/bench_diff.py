#!/usr/bin/env python3
"""Compare the two most recent entries of a bench history JSONL file.

tools/run_bench.sh appends one line per run to BENCH_history.jsonl:

    {"revision": "...", "date": "...", "bench": "BENCH_fig7.json",
     "result": {<the bench's JSON document>}}

This tool diffs the latest entry against the previous one (or two files
given explicitly), prints every shared numeric metric that moved, and
exits nonzero when a throughput metric regressed by more than the
threshold (default 10%) — the CI-friendly "did this PR slow the serving
path down" gate.

Usage:
    tools/bench_diff.py [--history BENCH_history.jsonl]
                        [--threshold 0.10] [--bench NAME]
                        [--require-keys a,b,...]
    tools/bench_diff.py --baseline old.json --candidate new.json

--require-keys names metrics the CANDIDATE must carry (comma-separated,
matched against the flattened dotted paths' leaf names). A schema
extension — e.g. the flat_quantized_* engine columns — can thereby be
made mandatory going forward: the diff fails loudly when a new run
silently stops emitting one instead of the key just vanishing from the
shared-metric intersection.

Throughput metrics are keys ending in `_per_sec` / `_qps` or containing
`throughput` (higher is better). Latency-style keys (`_ns`, `_seconds`,
`_ms`) are reported but do not gate: wall-clock noise gates belong to
dedicated latency benches, and ns/request is the exact inverse of the
gated predictions/sec here.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path


def flatten(doc, prefix=""):
    """Flatten nested dicts/lists to {dotted.path: leaf} pairs."""
    out = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            out.update(flatten(value, f"{prefix}{key}."))
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            out.update(flatten(value, f"{prefix}{i}."))
    else:
        out[prefix[:-1]] = doc
    return out


def is_throughput_key(key: str) -> bool:
    leaf = key.rsplit(".", 1)[-1]
    return (
        leaf.endswith("_per_sec")
        or leaf.endswith("_qps")
        or "throughput" in leaf
    )


def numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def load_history(path: Path, bench: str | None):
    entries = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as err:
            print(f"warning: {path}:{lineno} unparsable, skipped ({err})",
                  file=sys.stderr)
            continue
        if bench is not None and entry.get("bench") != bench:
            continue
        entries.append(entry)
    return entries


def missing_required(candidate_flat: dict, require_keys: list[str]):
    """Required keys with no flattened candidate leaf of that name."""
    leaves = {key.rsplit(".", 1)[-1] for key in candidate_flat}
    return [key for key in require_keys if key not in leaves]


def diff(baseline: dict, candidate: dict, threshold: float,
         require_keys: list[str] | None = None) -> int:
    base = {k: v for k, v in flatten(baseline).items() if numeric(v)}
    cand = {k: v for k, v in flatten(candidate).items() if numeric(v)}
    if require_keys:
        missing = missing_required(cand, require_keys)
        if missing:
            print(
                "FAIL: candidate is missing required metric(s): "
                + ", ".join(missing),
                file=sys.stderr,
            )
            return 1
    shared = sorted(set(base) & set(cand))
    if not shared:
        print("error: no shared numeric metrics to compare",
              file=sys.stderr)
        return 2

    regressions = []
    moved = 0
    for key in shared:
        old, new = base[key], cand[key]
        if old == new:
            continue
        moved += 1
        if old == 0:
            # No relative change is defined against a zero baseline, and
            # "grew from 0" says nothing about serving speed (a metric
            # that just started being emitted, or a counter that was
            # simply off last run) — report it, never classify it.
            print(f"{key}: {old:g} -> {new:g} (new from zero baseline)")
            continue
        rel = (new - old) / abs(old)
        marker = ""
        if is_throughput_key(key):
            if rel < -threshold:
                marker = "  <-- REGRESSION"
                regressions.append((key, old, new, rel))
            elif rel > threshold:
                marker = "  (improvement)"
        print(f"{key}: {old:g} -> {new:g} ({rel:+.2%}){marker}")
    if moved == 0:
        print(f"no changes across {len(shared)} shared metrics")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} throughput metric(s) regressed "
            f"more than {threshold:.0%}:",
            file=sys.stderr,
        )
        for key, old, new, rel in regressions:
            print(f"  {key}: {old:g} -> {new:g} ({rel:+.2%})",
                  file=sys.stderr)
        return 1
    print(f"\nOK: no throughput regression beyond {threshold:.0%} "
          f"across {len(shared)} shared metrics")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        help="JSONL appended by tools/run_bench.sh")
    parser.add_argument("--bench", default=None,
                        help="only compare entries of this bench "
                             "(e.g. BENCH_fig7.json)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative throughput drop that fails "
                             "(default 0.10)")
    parser.add_argument("--baseline", default=None,
                        help="explicit baseline JSON file (bypasses "
                             "--history)")
    parser.add_argument("--candidate", default=None,
                        help="explicit candidate JSON file (bypasses "
                             "--history)")
    parser.add_argument("--require-keys", default=None,
                        help="comma-separated metric leaf names the "
                             "candidate must emit (fail if missing)")
    args = parser.parse_args()
    require_keys = [k.strip() for k in (args.require_keys or "").split(",")
                    if k.strip()]

    if (args.baseline is None) != (args.candidate is None):
        parser.error("--baseline and --candidate must be given together")

    if args.baseline is not None:
        baseline = json.loads(Path(args.baseline).read_text())
        candidate = json.loads(Path(args.candidate).read_text())
        label_old, label_new = args.baseline, args.candidate
    else:
        path = Path(args.history)
        if not path.exists():
            print(f"error: history file {path} not found", file=sys.stderr)
            return 2
        entries = load_history(path, args.bench)
        if len(entries) < 2:
            print(f"only {len(entries)} matching run(s) in {path}; "
                  "nothing to diff yet")
            return 0
        previous, latest = entries[-2], entries[-1]
        baseline = previous.get("result", {})
        candidate = latest.get("result", {})
        label_old = (f"{previous.get('revision', '?')} "
                     f"({previous.get('date', '?')})")
        label_new = (f"{latest.get('revision', '?')} "
                     f"({latest.get('date', '?')})")

    print(f"baseline:  {label_old}")
    print(f"candidate: {label_new}\n")
    return diff(baseline, candidate, args.threshold, require_keys)


if __name__ == "__main__":
    sys.exit(main())
