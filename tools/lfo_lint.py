#!/usr/bin/env python3
"""lfo_lint: project-specific invariant checker for the LFO tree.

Lexical (token-level) checks that encode contracts the compiler cannot
see.  No compiler or clang tooling is required, so the lint runs in any
environment that has Python 3.

Rules
-----
hotpath      Functions tagged ``LFO_HOT_PATH`` must not allocate or
             lock: no ``new``/``malloc``/``make_unique``/container
             growth calls and no mutexes inside the tagged body.
nondet       Decision-affecting code (``src/core``, ``src/opt``,
             ``src/gbdt``, ``src/trace``) must be deterministic: no ``rand``/
             ``random_device``/``mt19937``, no wall clocks
             (``steady_clock``/``system_clock``/...), and no range-for
             iteration over ``std::unordered_*`` containers (hash
             iteration order is implementation-defined).
check-effect LFO_CHECK / LFO_DCHECK argument expressions must be free
             of side effects (``++``, ``--``, assignments): DCHECKs
             compile out in release builds, so a side effect inside one
             changes behavior between build types.
metric-name  Metric names must follow the obs conventions: counters
             end in ``_total``, histograms/timers end in ``_seconds``,
             gauges carry neither suffix, and everything starts with
             ``lfo_``.  Also covers endpoint metric tables — brace
             entries pairing a ``"/path"`` literal with a counter name
             (the ``kEndpointRequestCounters`` form in the telemetry
             server).
endpoint     Functions tagged ``LFO_ENDPOINT_HANDLER`` parse untrusted
             bytes off a socket: malformed input must map to a 4xx
             response, never to a process abort, so no ``LFO_CHECK`` /
             ``LFO_DCHECK`` inside the tagged body.

Suppressions
------------
A justified violation is silenced with a comment on the same line or
the line directly above::

    // lfo-lint: allow(nondet): keys are sorted below, order is irrelevant

The reason text after the second colon is mandatory; a bare
``allow(rule)`` does not suppress.

Exit status: 0 = clean, 1 = violations found, 2 = usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from dataclasses import dataclass

CPP_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".hxx", ".h"}

#: Directories (relative to --root) whose code decides cache behavior and
#: therefore falls under the determinism contract (see DESIGN.md
#: "same_decisions"): identical inputs must yield identical decisions.
DECISION_DIRS = ("src/core", "src/opt", "src/gbdt", "src/trace")

ALLOW_RE = re.compile(r"lfo-lint:\s*allow\((?P<rule>[a-z-]+)\)\s*:\s*\S")

HOTPATH_BANNED = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc)\s*\("), "C allocation"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "smart-pointer allocation"),
    (re.compile(r"[.>]\s*(?:resize|push_back|emplace_back|emplace|insert|"
                r"assign|reserve)\s*\("), "container growth"),
    (re.compile(r"\bstd::(?:mutex|lock_guard|unique_lock|scoped_lock|"
                r"shared_mutex|shared_lock)\b"), "locking"),
    (re.compile(r"\bMutexLock\b"), "locking"),
    (re.compile(r"[.>]\s*(?:lock|try_lock)\s*\("), "locking"),
]

NONDET_BANNED = [
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\brandom_shuffle\b"), "std::random_shuffle"),
    (re.compile(r"\b(?:mt19937(?:_64)?|minstd_rand0?|ranlux\w+)\b"),
     "unseeded-by-contract standard engine (use util::Rng)"),
    (re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock)\b"),
     "wall clock"),
    (re.compile(r"\bgettimeofday\s*\("), "wall clock"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "wall clock"),
]

CHECK_MACRO_RE = re.compile(r"\bLFO_D?CHECK(?:_[A-Z]+)?\s*\(")

# Metric registration forms -> required name shape.
METRIC_FORMS = [
    (re.compile(r"\bLFO_COUNTER_(?:ADD|INC)\s*\(\s*\"([^\"]*)\""), "counter"),
    (re.compile(r"[.>]\s*counter\s*\(\s*\"([^\"]*)\""), "counter"),
    (re.compile(r"\bLFO_HISTOGRAM_OBSERVE_SECONDS\s*\(\s*\"([^\"]*)\""),
     "histogram"),
    (re.compile(r"\bLFO_SCOPED_TIMER\s*\(\s*\"([^\"]*)\""), "histogram"),
    (re.compile(r"[.>]\s*histogram\s*\(\s*\"([^\"]*)\""), "histogram"),
    (re.compile(r"\bLFO_GAUGE_SET\s*\(\s*\"([^\"]*)\""), "gauge"),
    (re.compile(r"[.>]\s*gauge\s*\(\s*\"([^\"]*)\""), "gauge"),
    # Endpoint metric tables: {"/path", "lfo_..._total"} entries pairing a
    # URL path with the per-endpoint request counter it feeds (the
    # kEndpointRequestCounters form in src/obs/telemetry_server.cpp).
    (re.compile(r"\{\s*\"/[^\"]*\"\s*,\s*\"([^\"]*)\"\s*\}"), "counter"),
]

METRIC_NAME_RE = re.compile(r"lfo_[a-z0-9_]+$")


@dataclass
class Violation:
    path: pathlib.Path
    line: int  # 1-based
    rule: str
    message: str


@dataclass
class SourceFile:
    """A source file split into comment-free code lines.

    ``code[i]`` is line ``i`` with comments removed and string/char
    literals blanked (quotes kept, contents replaced by spaces) so
    token scans never match inside text.  ``code_strings[i]`` keeps the
    literal contents (for metric-name checks).  ``allows[i]`` holds the
    rule names allowed on line ``i`` by suppression comments.
    """

    path: pathlib.Path
    raw: list[str]
    code: list[str]
    code_strings: list[str]
    allows: list[set[str]]


def _strip_line(line: str, in_block: bool) -> tuple[str, str, str, bool]:
    """Split one raw line into (code, code_with_strings, comment_text)."""
    code: list[str] = []
    with_str: list[str] = []
    comment: list[str] = []
    i, n = 0, len(line)
    while i < n:
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                comment.append(line[i:])
                i = n
            else:
                comment.append(line[i:end])
                i = end + 2
                in_block = False
            continue
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            comment.append(line[i + 2:])
            i = n
        elif ch == "/" and nxt == "*":
            in_block = True
            i += 2
        elif ch in "\"'":
            quote = ch
            code.append(quote)
            with_str.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\" and i + 1 < n:
                    code.append("  ")
                    with_str.append(line[i:i + 2])
                    i += 2
                    continue
                if line[i] == quote:
                    code.append(quote)
                    with_str.append(quote)
                    i += 1
                    break
                code.append(" ")
                with_str.append(line[i])
                i += 1
        else:
            code.append(ch)
            with_str.append(ch)
            i += 1
    return "".join(code), "".join(with_str), "".join(comment), in_block


def load_source(path: pathlib.Path) -> SourceFile:
    raw = path.read_text(encoding="utf-8", errors="replace").splitlines()
    code: list[str] = []
    code_strings: list[str] = []
    allows: list[set[str]] = []
    in_block = False
    for idx, line in enumerate(raw):
        c, cs, comment, in_block = _strip_line(line, in_block)
        # Preprocessor lines are not expression context; skip them so
        # macro *definitions* (e.g. the LFO_CHECK implementation) never
        # trip expression rules.
        if c.lstrip().startswith("#"):
            c, cs = "", ""
        code.append(c)
        code_strings.append(cs)
        rules = {m.group("rule") for m in ALLOW_RE.finditer(comment)}
        allows.append(rules)
    return SourceFile(path, raw, code, code_strings, allows)


def allowed(src: SourceFile, line_idx: int, rule: str) -> bool:
    """True if the violation on ``line_idx`` (0-based) is suppressed."""
    if rule in src.allows[line_idx]:
        return True
    return line_idx > 0 and rule in src.allows[line_idx - 1]


def report(out: list[Violation], src: SourceFile, line_idx: int, rule: str,
           message: str) -> None:
    if not allowed(src, line_idx, rule):
        out.append(Violation(src.path, line_idx + 1, rule, message))


# ---------------------------------------------------- tagged-body walker


def tagged_bodies(src: SourceFile, tag: str):
    """Yield (start_idx, end_idx) line ranges of ``tag``-marked bodies.

    ``tag`` is a function-tag macro (LFO_HOT_PATH, LFO_ENDPOINT_HANDLER):
    the body is the brace block of the first '{' at paren depth 0 after
    the tag, skipping the parameter list.
    """
    text = "\n".join(src.code)
    offsets = [0]
    for line in src.code:
        offsets.append(offsets[-1] + len(line) + 1)

    def line_of(pos: int) -> int:
        lo, hi = 0, len(offsets) - 1
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if offsets[mid] <= pos:
                lo = mid
            else:
                hi = mid
        return lo

    for m in re.finditer(r"\b" + re.escape(tag) + r"\b", text):
        # Walk to the function's opening brace: the first '{' at paren
        # depth 0 after the tag (skips the parameter list).
        i, depth = m.end(), 0
        open_pos = -1
        while i < len(text):
            ch = text[i]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            elif ch == "{" and depth == 0:
                open_pos = i
                break
            elif ch == ";" and depth == 0:
                break  # declaration only — nothing to scan
            i += 1
        if open_pos < 0:
            continue
        i, depth = open_pos, 0
        close_pos = len(text) - 1
        while i < len(text):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    close_pos = i
                    break
            i += 1
        yield line_of(open_pos), line_of(close_pos)


def check_hotpath(src: SourceFile, out: list[Violation]) -> None:
    for start, end in tagged_bodies(src, "LFO_HOT_PATH"):
        for idx in range(start, end + 1):
            for pattern, what in HOTPATH_BANNED:
                if pattern.search(src.code[idx]):
                    report(out, src, idx, "hotpath",
                           f"{what} in LFO_HOT_PATH function")


# --------------------------------------------------------------- endpoint


def check_endpoint(src: SourceFile, out: list[Violation]) -> None:
    """No aborting checks in HTTP endpoint handlers.

    LFO_ENDPOINT_HANDLER bodies parse untrusted request bytes; the
    contract (see src/obs/telemetry_server.hpp) is that malformed input
    yields a 4xx response, so an LFO_CHECK / LFO_DCHECK reachable from
    request data turns a bad curl into a cache-node abort.
    """
    for start, end in tagged_bodies(src, "LFO_ENDPOINT_HANDLER"):
        for idx in range(start, end + 1):
            for m in CHECK_MACRO_RE.finditer(src.code[idx]):
                report(out, src, idx, "endpoint",
                       f"{m.group(0).rstrip('(').strip()} inside an "
                       "LFO_ENDPOINT_HANDLER body (malformed requests "
                       "must get a 4xx, not abort the process)")


# ----------------------------------------------------------------- nondet


def in_decision_dir(path: pathlib.Path, root: pathlib.Path) -> bool:
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return False
    return any(rel == d or rel.startswith(d + "/") for d in DECISION_DIRS)


def unordered_container_names(text: str) -> set[str]:
    """Identifiers declared with std::unordered_* type in ``text``."""
    names: set[str] = set()
    for m in re.finditer(r"\bunordered_(?:map|set|multimap|multiset)\s*<",
                         text):
        i, depth = m.end() - 1, 0
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        ident = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(,)]",
                         text[i + 1:i + 200])
        if ident:
            names.add(ident.group(1))
    return names


def check_nondet(src: SourceFile, root: pathlib.Path,
                 out: list[Violation]) -> None:
    if not in_decision_dir(src.path, root):
        return
    for idx, line in enumerate(src.code):
        for pattern, what in NONDET_BANNED:
            if pattern.search(line):
                report(out, src, idx, "nondet",
                       f"{what} in decision-affecting code")

    # Hash-order iteration: range-for over a declared unordered_*
    # variable in this file or its paired header.
    names = unordered_container_names("\n".join(src.code))
    header = src.path.with_suffix(".hpp")
    if src.path.suffix != ".hpp" and header.exists():
        names |= unordered_container_names(
            "\n".join(load_source(header).code))
    if not names:
        return
    for idx, line in enumerate(src.code):
        m = re.search(r"\bfor\s*\(.*:\s*(?:\w+(?:\.|->))*([A-Za-z_]\w*)\s*\)",
                      line)
        if m and m.group(1) in names:
            report(out, src, idx, "nondet",
                   f"range-for over unordered container '{m.group(1)}' "
                   "(hash iteration order is implementation-defined)")


# ----------------------------------------------------------- check-effect


def check_side_effects(src: SourceFile, out: list[Violation]) -> None:
    text = "\n".join(src.code)
    offsets = [0]
    for line in src.code:
        offsets.append(offsets[-1] + len(line) + 1)

    def line_of(pos: int) -> int:
        lo, hi = 0, len(offsets) - 1
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if offsets[mid] <= pos:
                lo = mid
            else:
                hi = mid
        return lo

    for m in CHECK_MACRO_RE.finditer(text):
        i, depth = m.end() - 1, 0
        start = i
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        args = text[start + 1:i]
        # Remove comparison operators; any '=' that survives is an
        # assignment (plain or compound).
        cleaned = re.sub(r"==|!=|<=|>=", "", args)
        effect = None
        if re.search(r"\+\+|--", cleaned):
            effect = "increment/decrement"
        elif re.search(r"=", cleaned):
            effect = "assignment"
        if effect:
            report(out, src, line_of(m.start()), "check-effect",
                   f"{effect} inside {text[m.start():m.end() - 1].strip()}"
                   " arguments (DCHECKs compile out in release builds)")


# ------------------------------------------------------------ metric-name


def check_metric_names(src: SourceFile, out: list[Violation]) -> None:
    for idx, line in enumerate(src.code_strings):
        for pattern, kind in METRIC_FORMS:
            for m in pattern.finditer(line):
                name = m.group(1)
                bad = None
                if not METRIC_NAME_RE.match(name):
                    bad = "must match lfo_[a-z0-9_]+"
                elif kind == "counter" and not name.endswith("_total"):
                    bad = "counter names must end in _total"
                elif kind == "histogram" and not name.endswith("_seconds"):
                    bad = "histogram/timer names must end in _seconds"
                elif kind == "gauge" and (name.endswith("_total")
                                          or name.endswith("_seconds")):
                    bad = ("gauge names must not carry the _total/_seconds "
                           "suffix of other metric kinds")
                if bad:
                    report(out, src, idx, "metric-name",
                           f"metric '{name}': {bad}")


# ------------------------------------------------------------------ main


def collect_files(paths: list[pathlib.Path]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(q for q in p.rglob("*")
                                if q.suffix in CPP_SUFFIXES and q.is_file()))
        elif p.is_file():
            files.append(p)
        else:
            print(f"lfo_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="lfo_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files or directories to scan "
                             "(default: <root>/src)")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="tree root used to resolve the decision-dir "
                             "scope of the nondet rule (default: repo root)")
    args = parser.parse_args(argv)

    paths = args.paths or [args.root / "src"]
    violations: list[Violation] = []
    files = collect_files(paths)
    for path in files:
        src = load_source(path)
        check_hotpath(src, violations)
        check_endpoint(src, violations)
        check_nondet(src, args.root, violations)
        check_side_effects(src, violations)
        check_metric_names(src, violations)

    for v in sorted(violations, key=lambda v: (str(v.path), v.line)):
        print(f"{v.path}:{v.line}: [{v.rule}] {v.message}")
    if violations:
        print(f"lfo_lint: {len(violations)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lfo_lint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
