#!/usr/bin/env bash
# Build the bench harnesses in Release and run a machine-readable bench.
#
#   tools/run_bench.sh [--scenarios] [extra bench flags...]
#
# Default: the Fig 7 serving-throughput bench -> BENCH_fig7.json
# (predictions/sec and ns/request per inference engine, speedups,
# decision-identity checks, git revision).
#
# --scenarios: the adversarial & freshness workload suite ->
# BENCH_scenarios.json (per-scenario BHR for guarded LFO / heuristic-only
# / LRU, RolloutGuard transition counts, expired hits; exits nonzero if
# the guarded-vs-heuristic robustness gate is violated).
#
# --server: the lfo::server worker-thread scaling curve ->
# BENCH_server.json (aggregate reqs/s at 1/2/4/8 workers over the TCP
# front end; the >=3x 1->4 scaling gate arms only on hosts with enough
# cores for the workers plus their closed-loop clients).
#
# The human-readable CSV goes to stdout as usual. Pass a different
# --json=<path> to relocate the JSON, or bench-specific flags (e.g.
# --predict-requests=200000 for fig7, --min-serving-accuracy=0.7 for
# --scenarios) to rescale the workload.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

TARGET="bench_fig7_throughput"
JSON_OUT="BENCH_fig7.json"
BENCH_NAME="fig7 throughput"
# Engine columns every fig7 run must emit from now on: bench_diff fails
# loudly if a run silently stops reporting one (e.g. the quantized engine
# getting compiled out) instead of the key just vanishing from the diff.
REQUIRE_KEYS="flat_batch_preds_per_sec,flat_single_preds_per_sec"
REQUIRE_KEYS+=",flat_quantized_batch_preds_per_sec"
REQUIRE_KEYS+=",flat_quantized_single_preds_per_sec"
REQUIRE_KEYS+=",flat_quantized_scalar_preds_per_sec"
EXTRA_ARGS=()
for arg in "$@"; do
  case "$arg" in
    --scenarios)
      TARGET="bench_scenarios"
      JSON_OUT="BENCH_scenarios.json"
      BENCH_NAME="adversarial scenarios"
      REQUIRE_KEYS=""
      ;;
    --server)
      TARGET="bench_server"
      JSON_OUT="BENCH_server.json"
      BENCH_NAME="server scaling"
      REQUIRE_KEYS="server_reqs_per_sec_w1,server_reqs_per_sec_w4"
      ;;
    --json=*) JSON_OUT="${arg#--json=}" ;;
    *) EXTRA_ARGS+=("$arg") ;;
  esac
done

printf '\n=== bench: Release build ===\n'
cmake -S . -B build-perf -DCMAKE_BUILD_TYPE=Release
cmake --build build-perf --target "$TARGET" -j "$JOBS"

printf '\n=== bench: %s (json -> %s) ===\n' "$BENCH_NAME" "$JSON_OUT"
"./build-perf/bench/$TARGET" --json="$JSON_OUT" \
    ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"}

printf '\n=== %s ===\n' "$JSON_OUT"
cat "$JSON_OUT"

if [[ "$TARGET" == "bench_fig7_throughput" ]]; then
  printf '\n=== per-engine summary (%s) ===\n' "$JSON_OUT"
  python3 - "$JSON_OUT" <<'PYEOF'
import json, sys
d = json.load(open(sys.argv[1]))
walk = d.get("tree_walk_preds_per_sec") or 0
print(f"{'engine':<28} {'M preds/s':>10} {'ns/pred':>9} {'vs walk':>8}")
for key in sorted(k for k in d if k.endswith("_preds_per_sec")):
    pps = d[key]
    name = key[: -len("_preds_per_sec")]
    rel = f"{pps / walk:.2f}x" if walk else "n/a"
    print(f"{name:<28} {pps / 1e6:>10.2f} {1e9 / pps:>9.0f} {rel:>8}")
print(f"simd_kernel={d.get('simd_kernel', '?')}  "
      f"same_decisions={d.get('engines_same_decisions')}  "
      f"quantized_same_decisions={d.get('quantized_same_decisions')}")
PYEOF
fi

# Append this run to the bench history ledger. Revision and timestamp are
# stamped here in the shell — the bench binaries stay wall-clock-free so
# their output is a pure function of the workload. tools/bench_diff.py
# then compares against the previous run of the same bench and fails on a
# >10% throughput regression (advisory here: a first run has no baseline).
HISTORY_OUT="${BENCH_HISTORY:-BENCH_history.jsonl}"
REVISION="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
DATE_ISO="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
python3 - "$JSON_OUT" "$HISTORY_OUT" "$REVISION" "$DATE_ISO" <<'PYEOF'
import json, sys
json_out, history_out, revision, date_iso = sys.argv[1:5]
with open(json_out) as f:
    result = json.load(f)
entry = {"revision": revision, "date": date_iso,
         "bench": json_out, "result": result}
with open(history_out, "a") as f:
    f.write(json.dumps(entry, sort_keys=True) + "\n")
print(f"# appended {json_out} @ {revision} to {history_out}")
PYEOF

printf '\n=== bench history diff (%s) ===\n' "$HISTORY_OUT"
# Advisory at the end of a manual run (single-run noise on a busy box can
# cross the 10% line); invoke tools/bench_diff.py directly when you want
# its nonzero exit to gate.
python3 tools/bench_diff.py --history "$HISTORY_OUT" --bench "$JSON_OUT" \
  ${REQUIRE_KEYS:+--require-keys "$REQUIRE_KEYS"} \
  || echo "# bench_diff flagged a regression vs the previous run" \
          "(advisory here; rerun or diff against a quiet baseline)"
