#!/usr/bin/env bash
# Build the bench harnesses in Release and run the Fig 7 serving-throughput
# bench with machine-readable output.
#
#   tools/run_bench.sh [extra bench_fig7_throughput flags...]
#
# Writes BENCH_fig7.json (predictions/sec and ns/request per inference
# engine, speedups, decision-identity checks, git revision) into the repo
# root; the human-readable CSV goes to stdout as usual. Pass a different
# --json=<path> to relocate the JSON, or e.g. --predict-requests=200000 to
# rescale the workload.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

JSON_OUT="BENCH_fig7.json"
EXTRA_ARGS=()
for arg in "$@"; do
  case "$arg" in
    --json=*) JSON_OUT="${arg#--json=}" ;;
    *) EXTRA_ARGS+=("$arg") ;;
  esac
done

printf '\n=== bench: Release build ===\n'
cmake -S . -B build-perf -DCMAKE_BUILD_TYPE=Release
cmake --build build-perf --target bench_fig7_throughput -j "$JOBS"

printf '\n=== bench: fig7 throughput (json -> %s) ===\n' "$JSON_OUT"
./build-perf/bench/bench_fig7_throughput --json="$JSON_OUT" \
    ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"}

printf '\n=== %s ===\n' "$JSON_OUT"
cat "$JSON_OUT"
