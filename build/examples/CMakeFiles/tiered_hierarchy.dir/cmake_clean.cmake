file(REMOVE_RECURSE
  "CMakeFiles/tiered_hierarchy.dir/tiered_hierarchy.cpp.o"
  "CMakeFiles/tiered_hierarchy.dir/tiered_hierarchy.cpp.o.d"
  "tiered_hierarchy"
  "tiered_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
