# Empty dependencies file for tiered_hierarchy.
# This may be replaced when dependencies are built.
