# Empty dependencies file for cdn_server_simulation.
# This may be replaced when dependencies are built.
