file(REMOVE_RECURSE
  "CMakeFiles/cdn_server_simulation.dir/cdn_server_simulation.cpp.o"
  "CMakeFiles/cdn_server_simulation.dir/cdn_server_simulation.cpp.o.d"
  "cdn_server_simulation"
  "cdn_server_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_server_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
