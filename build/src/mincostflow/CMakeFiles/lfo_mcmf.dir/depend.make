# Empty dependencies file for lfo_mcmf.
# This may be replaced when dependencies are built.
