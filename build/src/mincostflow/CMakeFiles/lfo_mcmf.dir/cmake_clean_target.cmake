file(REMOVE_RECURSE
  "liblfo_mcmf.a"
)
