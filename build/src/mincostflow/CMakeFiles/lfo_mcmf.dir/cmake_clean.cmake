file(REMOVE_RECURSE
  "CMakeFiles/lfo_mcmf.dir/graph.cpp.o"
  "CMakeFiles/lfo_mcmf.dir/graph.cpp.o.d"
  "CMakeFiles/lfo_mcmf.dir/solver.cpp.o"
  "CMakeFiles/lfo_mcmf.dir/solver.cpp.o.d"
  "liblfo_mcmf.a"
  "liblfo_mcmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfo_mcmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
