# Empty compiler generated dependencies file for lfo_features.
# This may be replaced when dependencies are built.
