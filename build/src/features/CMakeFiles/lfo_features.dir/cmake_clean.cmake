file(REMOVE_RECURSE
  "CMakeFiles/lfo_features.dir/dataset_builder.cpp.o"
  "CMakeFiles/lfo_features.dir/dataset_builder.cpp.o.d"
  "CMakeFiles/lfo_features.dir/features.cpp.o"
  "CMakeFiles/lfo_features.dir/features.cpp.o.d"
  "liblfo_features.a"
  "liblfo_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfo_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
