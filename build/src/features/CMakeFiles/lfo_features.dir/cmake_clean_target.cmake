file(REMOVE_RECURSE
  "liblfo_features.a"
)
