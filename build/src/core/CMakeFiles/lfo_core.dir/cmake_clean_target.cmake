file(REMOVE_RECURSE
  "liblfo_core.a"
)
