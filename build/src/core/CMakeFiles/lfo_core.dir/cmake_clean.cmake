file(REMOVE_RECURSE
  "CMakeFiles/lfo_core.dir/lfo_cache.cpp.o"
  "CMakeFiles/lfo_core.dir/lfo_cache.cpp.o.d"
  "CMakeFiles/lfo_core.dir/lfo_model.cpp.o"
  "CMakeFiles/lfo_core.dir/lfo_model.cpp.o.d"
  "CMakeFiles/lfo_core.dir/lrb_lite.cpp.o"
  "CMakeFiles/lfo_core.dir/lrb_lite.cpp.o.d"
  "CMakeFiles/lfo_core.dir/tuning.cpp.o"
  "CMakeFiles/lfo_core.dir/tuning.cpp.o.d"
  "CMakeFiles/lfo_core.dir/windowed.cpp.o"
  "CMakeFiles/lfo_core.dir/windowed.cpp.o.d"
  "liblfo_core.a"
  "liblfo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
