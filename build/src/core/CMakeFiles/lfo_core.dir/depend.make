# Empty dependencies file for lfo_core.
# This may be replaced when dependencies are built.
