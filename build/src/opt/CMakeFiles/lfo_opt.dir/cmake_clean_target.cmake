file(REMOVE_RECURSE
  "liblfo_opt.a"
)
