file(REMOVE_RECURSE
  "CMakeFiles/lfo_opt.dir/belady.cpp.o"
  "CMakeFiles/lfo_opt.dir/belady.cpp.o.d"
  "CMakeFiles/lfo_opt.dir/flow_builder.cpp.o"
  "CMakeFiles/lfo_opt.dir/flow_builder.cpp.o.d"
  "CMakeFiles/lfo_opt.dir/opt.cpp.o"
  "CMakeFiles/lfo_opt.dir/opt.cpp.o.d"
  "CMakeFiles/lfo_opt.dir/segment_tree.cpp.o"
  "CMakeFiles/lfo_opt.dir/segment_tree.cpp.o.d"
  "liblfo_opt.a"
  "liblfo_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfo_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
