# Empty dependencies file for lfo_opt.
# This may be replaced when dependencies are built.
