
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/belady.cpp" "src/opt/CMakeFiles/lfo_opt.dir/belady.cpp.o" "gcc" "src/opt/CMakeFiles/lfo_opt.dir/belady.cpp.o.d"
  "/root/repo/src/opt/flow_builder.cpp" "src/opt/CMakeFiles/lfo_opt.dir/flow_builder.cpp.o" "gcc" "src/opt/CMakeFiles/lfo_opt.dir/flow_builder.cpp.o.d"
  "/root/repo/src/opt/opt.cpp" "src/opt/CMakeFiles/lfo_opt.dir/opt.cpp.o" "gcc" "src/opt/CMakeFiles/lfo_opt.dir/opt.cpp.o.d"
  "/root/repo/src/opt/segment_tree.cpp" "src/opt/CMakeFiles/lfo_opt.dir/segment_tree.cpp.o" "gcc" "src/opt/CMakeFiles/lfo_opt.dir/segment_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lfo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mincostflow/CMakeFiles/lfo_mcmf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
