file(REMOVE_RECURSE
  "liblfo_util.a"
)
