# Empty compiler generated dependencies file for lfo_util.
# This may be replaced when dependencies are built.
