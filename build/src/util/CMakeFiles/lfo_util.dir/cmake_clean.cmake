file(REMOVE_RECURSE
  "CMakeFiles/lfo_util.dir/csv.cpp.o"
  "CMakeFiles/lfo_util.dir/csv.cpp.o.d"
  "CMakeFiles/lfo_util.dir/logging.cpp.o"
  "CMakeFiles/lfo_util.dir/logging.cpp.o.d"
  "CMakeFiles/lfo_util.dir/rng.cpp.o"
  "CMakeFiles/lfo_util.dir/rng.cpp.o.d"
  "CMakeFiles/lfo_util.dir/stats.cpp.o"
  "CMakeFiles/lfo_util.dir/stats.cpp.o.d"
  "CMakeFiles/lfo_util.dir/strings.cpp.o"
  "CMakeFiles/lfo_util.dir/strings.cpp.o.d"
  "CMakeFiles/lfo_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lfo_util.dir/thread_pool.cpp.o.d"
  "liblfo_util.a"
  "liblfo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
