file(REMOVE_RECURSE
  "CMakeFiles/lfo_trace.dir/generator.cpp.o"
  "CMakeFiles/lfo_trace.dir/generator.cpp.o.d"
  "CMakeFiles/lfo_trace.dir/io.cpp.o"
  "CMakeFiles/lfo_trace.dir/io.cpp.o.d"
  "CMakeFiles/lfo_trace.dir/trace.cpp.o"
  "CMakeFiles/lfo_trace.dir/trace.cpp.o.d"
  "CMakeFiles/lfo_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/lfo_trace.dir/trace_stats.cpp.o.d"
  "CMakeFiles/lfo_trace.dir/zipf.cpp.o"
  "CMakeFiles/lfo_trace.dir/zipf.cpp.o.d"
  "liblfo_trace.a"
  "liblfo_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
