file(REMOVE_RECURSE
  "liblfo_trace.a"
)
