# Empty compiler generated dependencies file for lfo_trace.
# This may be replaced when dependencies are built.
