file(REMOVE_RECURSE
  "CMakeFiles/lfo_sim.dir/simulator.cpp.o"
  "CMakeFiles/lfo_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/lfo_sim.dir/sweep.cpp.o"
  "CMakeFiles/lfo_sim.dir/sweep.cpp.o.d"
  "liblfo_sim.a"
  "liblfo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
