# Empty compiler generated dependencies file for lfo_sim.
# This may be replaced when dependencies are built.
