file(REMOVE_RECURSE
  "liblfo_sim.a"
)
