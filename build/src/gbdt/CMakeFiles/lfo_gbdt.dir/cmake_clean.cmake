file(REMOVE_RECURSE
  "CMakeFiles/lfo_gbdt.dir/dataset.cpp.o"
  "CMakeFiles/lfo_gbdt.dir/dataset.cpp.o.d"
  "CMakeFiles/lfo_gbdt.dir/gbdt.cpp.o"
  "CMakeFiles/lfo_gbdt.dir/gbdt.cpp.o.d"
  "CMakeFiles/lfo_gbdt.dir/tree.cpp.o"
  "CMakeFiles/lfo_gbdt.dir/tree.cpp.o.d"
  "liblfo_gbdt.a"
  "liblfo_gbdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfo_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
