# Empty dependencies file for lfo_gbdt.
# This may be replaced when dependencies are built.
