
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gbdt/dataset.cpp" "src/gbdt/CMakeFiles/lfo_gbdt.dir/dataset.cpp.o" "gcc" "src/gbdt/CMakeFiles/lfo_gbdt.dir/dataset.cpp.o.d"
  "/root/repo/src/gbdt/gbdt.cpp" "src/gbdt/CMakeFiles/lfo_gbdt.dir/gbdt.cpp.o" "gcc" "src/gbdt/CMakeFiles/lfo_gbdt.dir/gbdt.cpp.o.d"
  "/root/repo/src/gbdt/tree.cpp" "src/gbdt/CMakeFiles/lfo_gbdt.dir/tree.cpp.o" "gcc" "src/gbdt/CMakeFiles/lfo_gbdt.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
