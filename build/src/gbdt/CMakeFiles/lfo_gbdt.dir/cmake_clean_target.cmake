file(REMOVE_RECURSE
  "liblfo_gbdt.a"
)
