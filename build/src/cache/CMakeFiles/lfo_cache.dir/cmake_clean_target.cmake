file(REMOVE_RECURSE
  "liblfo_cache.a"
)
