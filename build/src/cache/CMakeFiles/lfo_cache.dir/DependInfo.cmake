
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/adaptsize.cpp" "src/cache/CMakeFiles/lfo_cache.dir/adaptsize.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/adaptsize.cpp.o.d"
  "/root/repo/src/cache/arc.cpp" "src/cache/CMakeFiles/lfo_cache.dir/arc.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/arc.cpp.o.d"
  "/root/repo/src/cache/bloom_admission.cpp" "src/cache/CMakeFiles/lfo_cache.dir/bloom_admission.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/bloom_admission.cpp.o.d"
  "/root/repo/src/cache/factory.cpp" "src/cache/CMakeFiles/lfo_cache.dir/factory.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/factory.cpp.o.d"
  "/root/repo/src/cache/gd_wheel.cpp" "src/cache/CMakeFiles/lfo_cache.dir/gd_wheel.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/gd_wheel.cpp.o.d"
  "/root/repo/src/cache/greedy_dual.cpp" "src/cache/CMakeFiles/lfo_cache.dir/greedy_dual.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/greedy_dual.cpp.o.d"
  "/root/repo/src/cache/hyperbolic.cpp" "src/cache/CMakeFiles/lfo_cache.dir/hyperbolic.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/hyperbolic.cpp.o.d"
  "/root/repo/src/cache/lfuda.cpp" "src/cache/CMakeFiles/lfo_cache.dir/lfuda.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/lfuda.cpp.o.d"
  "/root/repo/src/cache/lhd.cpp" "src/cache/CMakeFiles/lfo_cache.dir/lhd.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/lhd.cpp.o.d"
  "/root/repo/src/cache/lru.cpp" "src/cache/CMakeFiles/lfo_cache.dir/lru.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/lru.cpp.o.d"
  "/root/repo/src/cache/lru_k.cpp" "src/cache/CMakeFiles/lfo_cache.dir/lru_k.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/lru_k.cpp.o.d"
  "/root/repo/src/cache/policy.cpp" "src/cache/CMakeFiles/lfo_cache.dir/policy.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/policy.cpp.o.d"
  "/root/repo/src/cache/random_cache.cpp" "src/cache/CMakeFiles/lfo_cache.dir/random_cache.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/random_cache.cpp.o.d"
  "/root/repo/src/cache/rl_cache.cpp" "src/cache/CMakeFiles/lfo_cache.dir/rl_cache.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/rl_cache.cpp.o.d"
  "/root/repo/src/cache/s4lru.cpp" "src/cache/CMakeFiles/lfo_cache.dir/s4lru.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/s4lru.cpp.o.d"
  "/root/repo/src/cache/tiered.cpp" "src/cache/CMakeFiles/lfo_cache.dir/tiered.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/tiered.cpp.o.d"
  "/root/repo/src/cache/tinylfu.cpp" "src/cache/CMakeFiles/lfo_cache.dir/tinylfu.cpp.o" "gcc" "src/cache/CMakeFiles/lfo_cache.dir/tinylfu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lfo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lfo_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
