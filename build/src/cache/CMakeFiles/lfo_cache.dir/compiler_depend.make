# Empty compiler generated dependencies file for lfo_cache.
# This may be replaced when dependencies are built.
