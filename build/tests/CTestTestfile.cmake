# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_mincostflow[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_gbdt[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_lrb[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_arc[1]_include.cmake")
include("/root/repo/build/tests/test_policy_properties[1]_include.cmake")
include("/root/repo/build/tests/test_util_more[1]_include.cmake")
include("/root/repo/build/tests/test_opt_more[1]_include.cmake")
