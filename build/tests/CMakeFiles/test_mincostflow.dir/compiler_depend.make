# Empty compiler generated dependencies file for test_mincostflow.
# This may be replaced when dependencies are built.
