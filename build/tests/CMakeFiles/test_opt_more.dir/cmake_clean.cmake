file(REMOVE_RECURSE
  "CMakeFiles/test_opt_more.dir/test_opt_more.cpp.o"
  "CMakeFiles/test_opt_more.dir/test_opt_more.cpp.o.d"
  "test_opt_more"
  "test_opt_more.pdb"
  "test_opt_more[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
