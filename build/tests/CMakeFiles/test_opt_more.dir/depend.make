# Empty dependencies file for test_opt_more.
# This may be replaced when dependencies are built.
