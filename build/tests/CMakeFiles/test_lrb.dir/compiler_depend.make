# Empty compiler generated dependencies file for test_lrb.
# This may be replaced when dependencies are built.
