file(REMOVE_RECURSE
  "CMakeFiles/test_lrb.dir/test_lrb.cpp.o"
  "CMakeFiles/test_lrb.dir/test_lrb.cpp.o.d"
  "test_lrb"
  "test_lrb.pdb"
  "test_lrb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lrb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
