file(REMOVE_RECURSE
  "CMakeFiles/test_util_more.dir/test_util_more.cpp.o"
  "CMakeFiles/test_util_more.dir/test_util_more.cpp.o.d"
  "test_util_more"
  "test_util_more.pdb"
  "test_util_more[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
