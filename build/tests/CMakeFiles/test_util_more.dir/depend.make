# Empty dependencies file for test_util_more.
# This may be replaced when dependencies are built.
