# Empty compiler generated dependencies file for bench_extension_lrb.
# This may be replaced when dependencies are built.
