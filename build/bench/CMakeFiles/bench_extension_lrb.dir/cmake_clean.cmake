file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_lrb.dir/bench_extension_lrb.cpp.o"
  "CMakeFiles/bench_extension_lrb.dir/bench_extension_lrb.cpp.o.d"
  "bench_extension_lrb"
  "bench_extension_lrb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_lrb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
