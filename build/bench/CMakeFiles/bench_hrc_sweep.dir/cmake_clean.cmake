file(REMOVE_RECURSE
  "CMakeFiles/bench_hrc_sweep.dir/bench_hrc_sweep.cpp.o"
  "CMakeFiles/bench_hrc_sweep.dir/bench_hrc_sweep.cpp.o.d"
  "bench_hrc_sweep"
  "bench_hrc_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hrc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
