# Empty compiler generated dependencies file for bench_hrc_sweep.
# This may be replaced when dependencies are built.
