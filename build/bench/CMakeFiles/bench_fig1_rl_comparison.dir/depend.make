# Empty dependencies file for bench_fig1_rl_comparison.
# This may be replaced when dependencies are built.
