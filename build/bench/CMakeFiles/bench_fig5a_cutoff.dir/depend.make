# Empty dependencies file for bench_fig5a_cutoff.
# This may be replaced when dependencies are built.
