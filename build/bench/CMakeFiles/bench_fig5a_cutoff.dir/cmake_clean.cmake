file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_cutoff.dir/bench_fig5a_cutoff.cpp.o"
  "CMakeFiles/bench_fig5a_cutoff.dir/bench_fig5a_cutoff.cpp.o.d"
  "bench_fig5a_cutoff"
  "bench_fig5a_cutoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
