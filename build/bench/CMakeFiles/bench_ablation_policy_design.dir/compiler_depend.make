# Empty compiler generated dependencies file for bench_ablation_policy_design.
# This may be replaced when dependencies are built.
