# Empty compiler generated dependencies file for lfo_bench_common.
# This may be replaced when dependencies are built.
