file(REMOVE_RECURSE
  "liblfo_bench_common.a"
)
