file(REMOVE_RECURSE
  "CMakeFiles/lfo_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/lfo_bench_common.dir/bench_common.cpp.o.d"
  "liblfo_bench_common.a"
  "liblfo_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfo_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
