file(REMOVE_RECURSE
  "CMakeFiles/bench_opt_speedup.dir/bench_opt_speedup.cpp.o"
  "CMakeFiles/bench_opt_speedup.dir/bench_opt_speedup.cpp.o.d"
  "bench_opt_speedup"
  "bench_opt_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_opt_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
