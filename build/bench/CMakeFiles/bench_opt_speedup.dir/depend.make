# Empty dependencies file for bench_opt_speedup.
# This may be replaced when dependencies are built.
