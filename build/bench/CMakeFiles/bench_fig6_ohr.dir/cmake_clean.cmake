file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ohr.dir/bench_fig6_ohr.cpp.o"
  "CMakeFiles/bench_fig6_ohr.dir/bench_fig6_ohr.cpp.o.d"
  "bench_fig6_ohr"
  "bench_fig6_ohr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ohr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
