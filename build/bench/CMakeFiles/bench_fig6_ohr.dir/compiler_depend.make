# Empty compiler generated dependencies file for bench_fig6_ohr.
# This may be replaced when dependencies are built.
