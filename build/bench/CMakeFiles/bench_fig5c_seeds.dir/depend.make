# Empty dependencies file for bench_fig5c_seeds.
# This may be replaced when dependencies are built.
