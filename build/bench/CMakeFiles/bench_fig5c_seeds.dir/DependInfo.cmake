
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5c_seeds.cpp" "bench/CMakeFiles/bench_fig5c_seeds.dir/bench_fig5c_seeds.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5c_seeds.dir/bench_fig5c_seeds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/lfo_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lfo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lfo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/lfo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/lfo_features.dir/DependInfo.cmake"
  "/root/repo/build/src/gbdt/CMakeFiles/lfo_gbdt.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/lfo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/mincostflow/CMakeFiles/lfo_mcmf.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lfo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lfo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
