file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_seeds.dir/bench_fig5c_seeds.cpp.o"
  "CMakeFiles/bench_fig5c_seeds.dir/bench_fig5c_seeds.cpp.o.d"
  "bench_fig5c_seeds"
  "bench_fig5c_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
