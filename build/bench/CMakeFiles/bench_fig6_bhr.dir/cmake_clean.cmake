file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_bhr.dir/bench_fig6_bhr.cpp.o"
  "CMakeFiles/bench_fig6_bhr.dir/bench_fig6_bhr.cpp.o.d"
  "bench_fig6_bhr"
  "bench_fig6_bhr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_bhr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
