# Empty compiler generated dependencies file for bench_ablation_gaps.
# This may be replaced when dependencies are built.
