file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gaps.dir/bench_ablation_gaps.cpp.o"
  "CMakeFiles/bench_ablation_gaps.dir/bench_ablation_gaps.cpp.o.d"
  "bench_ablation_gaps"
  "bench_ablation_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
